//! Autoregressive decode throughput: continuous batching vs serial
//! per-session decode.
//!
//! A closed-loop harness over the gc-serve KV-cache decode subsystem:
//! N sessions each decode `steps` tokens against the f32 decode
//! template. First *serially* — one session runs to completion at a
//! time, so every scheduler iteration is a batch of one (the
//! single-stream regime: each step executes a whole plan for
//! `heads` rows) — then *concurrently*, where the continuous-batching
//! scheduler coalesces one pending step from every live session into a
//! single batched plan execution per iteration. Prints tokens/sec for
//! both and the speedup.
//!
//! Flags: `--sessions N` (default 64), `--steps N` tokens per session
//! (default 24), `--heads N` (default 4), `--head-dim N` (default 64),
//! `--threads N` engine pool width (default 2), `--stats` to dump the
//! full counter snapshots.

use gc_bench::workloads;
use gc_core::CompileOptions;
use gc_machine::MachineDescriptor;
use gc_serve::{DecodeConfig, DecodeModel, PlanCache, StatsSnapshot};
use gc_tensor::{DataType, Tensor};
use gc_tir::InitCache;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct RunResult {
    elapsed: Duration,
    tokens: u64,
    stats: StatsSnapshot,
}

#[derive(Clone, Copy)]
struct Params {
    sessions: usize,
    steps: usize,
    heads: usize,
    head_dim: usize,
    threads: usize,
}

fn decode_config(p: &Params) -> DecodeConfig {
    DecodeConfig {
        compile: CompileOptions {
            threads: Some(p.threads),
            ..CompileOptions::new(MachineDescriptor::xeon_8358())
        },
        max_batch: p.sessions,
        max_delay: Duration::from_micros(500),
        min_capacity: 16,
        max_capacity: p.steps.next_power_of_two().max(16),
        // Private caches so the two runs compile independently.
        plan_cache: Some(Arc::new(PlanCache::new())),
        init_cache: Some(Arc::new(InitCache::new())),
        ..DecodeConfig::default()
    }
}

fn decode_all_steps(model: &DecodeModel, p: &Params, seed: u64) {
    let (h, d) = (p.heads, p.head_dim);
    let session = model.session().expect("open session");
    for t in 0..p.steps as u64 {
        session
            .decode_step(
                &Tensor::random(&[h, 1, d], DataType::F32, seed + t),
                &Tensor::random(&[h, 1, d], DataType::F32, seed + 300 + t),
                &Tensor::random(&[h, 1, d], DataType::F32, seed + 600 + t),
            )
            .expect("decode step")
            .wait()
            .expect("step result");
    }
}

/// One session decodes to completion before the next starts: every
/// iteration is a batch of one.
fn run_serial(p: &Params) -> RunResult {
    let d = p.head_dim;
    let model = DecodeModel::load(
        move |r, c| workloads::decode_f32(r, c, d),
        p.heads,
        decode_config(p),
    )
    .expect("load decode model");
    decode_all_steps(&model, p, 9_000); // warm the plans
    let t0 = Instant::now();
    for s in 0..p.sessions as u64 {
        decode_all_steps(&model, p, s * 1_000);
    }
    RunResult {
        elapsed: t0.elapsed(),
        tokens: (p.sessions * p.steps) as u64,
        stats: model.stats(),
    }
}

/// All sessions decode concurrently; the scheduler coalesces their
/// pending steps into one plan execution per iteration.
fn run_batched(p: &Params) -> RunResult {
    let d = p.head_dim;
    let model = Arc::new(
        DecodeModel::load(
            move |r, c| workloads::decode_f32(r, c, d),
            p.heads,
            decode_config(p),
        )
        .expect("load decode model"),
    );
    // Warm the full-occupancy buckets: plans compile per (rows, cap),
    // and an unwarmed compile inside the timed region would be charged
    // to batching.
    {
        let warm: Vec<_> = (0..p.sessions)
            .map(|_| model.session().expect("warm session"))
            .collect();
        for t in 0..p.steps as u64 {
            let futs: Vec<_> = warm
                .iter()
                .map(|s| {
                    s.decode_step(
                        &Tensor::random(&[p.heads, 1, d], DataType::F32, 8_000 + t),
                        &Tensor::random(&[p.heads, 1, d], DataType::F32, 8_300 + t),
                        &Tensor::random(&[p.heads, 1, d], DataType::F32, 8_600 + t),
                    )
                    .expect("warm step")
                })
                .collect();
            for f in futs {
                f.wait().expect("warm result");
            }
        }
    }
    let barrier = Arc::new(Barrier::new(p.sessions + 1));
    let mut handles = Vec::new();
    for s in 0..p.sessions as u64 {
        let model = Arc::clone(&model);
        let barrier = Arc::clone(&barrier);
        let params = *p;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            decode_all_steps(&model, &params, s * 1_000);
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("session thread");
    }
    RunResult {
        elapsed: t0.elapsed(),
        tokens: (p.sessions * p.steps) as u64,
        stats: model.stats(),
    }
}

fn main() {
    let mut p = Params {
        sessions: 64,
        steps: 24,
        heads: 4,
        head_dim: 64,
        threads: 2,
    };
    let mut dump_stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{a} needs a number"))
        };
        match a.as_str() {
            "--sessions" => p.sessions = num(&mut args),
            "--steps" => p.steps = num(&mut args),
            "--heads" => p.heads = num(&mut args),
            "--head-dim" => p.head_dim = num(&mut args),
            "--threads" => p.threads = num(&mut args),
            "--stats" => dump_stats = true,
            other => panic!("unknown flag {other}"),
        }
    }

    println!(
        "decode_bench: f32 decode attention, {} heads x head_dim {}",
        p.heads, p.head_dim
    );
    println!(
        "{} sessions x {} tokens, engine pool = {} threads",
        p.sessions, p.steps, p.threads
    );
    println!();

    let serial = run_serial(&p);
    let batched = run_batched(&p);

    let tps = |r: &RunResult| r.tokens as f64 / r.elapsed.as_secs_f64();
    let fmt = |label: &str, r: &RunResult| {
        println!(
            "{label:<22} {:>10.0} tok/s   coalesce {:>6}   iterations {:>6}",
            tps(r),
            r.stats
                .decode_coalesce_ratio()
                .map_or("n/a".into(), |v| format!("{v:.2}")),
            r.stats.decode_iterations(),
        );
    };
    fmt("serial decode", &serial);
    fmt("continuous batching", &batched);
    println!();
    println!(
        "continuous-batching speedup: {:.2}x tokens/sec",
        tps(&batched) / tps(&serial)
    );

    if dump_stats {
        println!();
        println!("--- serial decode stats ---");
        print!("{}", serial.stats);
        println!("--- continuous batching stats ---");
        print!("{}", batched.stats);
    }
}
