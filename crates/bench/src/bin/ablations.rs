//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - `anchors`  — forced post-op anchor (#1 vs #2) and A-pack placement
//!   (anchor #2 vs #4), versus the cost-model choice;
//! - `layout`   — layout propagation on/off;
//! - `const`    — constant-weight caching: first execution (runs the
//!   init stage) vs steady state;
//! - `buffers`  — memory-buffer reuse + tensor-size optimization:
//!   peak temporary footprint and projected cycles;
//! - `kslice`   — the k-slicing matmul template: projected cycles with
//!   the knob on/off where the tunable-config search selects it (deep-K
//!   small-M×N on a wide pool), and the merged coarse-fusion path of
//!   small-batch MLP_1 with and without k-slicing (bypassing the merge
//!   gate, which on cost grounds prefers the split schedules).
//!
//! Usage: `ablations [anchors|layout|const|buffers|kslice|all] [--threads N]`

use gc_bench::workloads::{self, mha_configs, random_inputs};
use gc_core::{CompileOptions, Compiler};
use gc_lowering::anchors::{PackPlacement, PostOpAnchor};
use gc_machine::MachineDescriptor;

fn opts(threads: Option<usize>) -> CompileOptions {
    let mut o = CompileOptions::new(MachineDescriptor::xeon_8358());
    o.threads = threads;
    o
}

fn project_ms(o: CompileOptions, g: gc_graph::Graph) -> f64 {
    let machine = o.machine.clone();
    let c = Compiler::new(o).compile(g).expect("compile");
    machine.cycles_to_ms(c.project().cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if !matches!(
        what.as_str(),
        "anchors" | "layout" | "const" | "buffers" | "kslice" | "all"
    ) {
        eprintln!("usage: ablations [anchors|layout|const|buffers|kslice|all] [--threads N]");
        std::process::exit(2);
    }
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok());

    let mlp = || workloads::mlp_f32(512, &workloads::mlp1_layers(), 1);
    let mha = || workloads::mha_f32(32, &mha_configs()[0]).0;

    if what == "anchors" || what == "all" {
        println!("== ablation: fusion anchors (projected ms) ==");
        for (name, g) in [("MLP_1 b512", mlp()), ("MHA_1 b32", mha())] {
            let auto = project_ms(opts(threads), g);
            println!("{name:<12} cost-model choice : {auto:.4}");
        }
        for anchor in [PostOpAnchor::P1, PostOpAnchor::P2] {
            for (name, g) in [("MLP_1 b512", mlp()), ("MHA_1 b32", mha())] {
                let mut o = opts(threads);
                o.forced_post_anchor = Some(anchor);
                let ms = project_ms(o, g);
                println!("{name:<12} post-op anchor {anchor:?} : {ms:.4}");
            }
        }
        for pack in [PackPlacement::PerTask, PackPlacement::PerKChunk] {
            for (name, g) in [("MLP_1 b512", mlp()), ("MHA_1 b32", mha())] {
                let mut o = opts(threads);
                o.forced_pack = Some(pack);
                let ms = project_ms(o, g);
                println!("{name:<12} A-pack {pack:?} : {ms:.4}");
            }
        }
        println!();
    }

    if what == "layout" || what == "all" {
        println!("== ablation: layout propagation (projected ms) ==");
        for on in [true, false] {
            let mut o = opts(threads);
            o.propagate_layouts = on;
            let ms = project_ms(o, mlp());
            println!("MLP_1 b512   propagate_layouts={on} : {ms:.4}");
        }
        println!();
    }

    if what == "const" || what == "all" {
        println!("== ablation: constant-weight caching (wall ms on host) ==");
        let g = mlp();
        let inputs = random_inputs(&g, 3);
        let c = Compiler::new(opts(threads)).compile(g).expect("compile");
        let (_, first) = c.execute(&inputs).expect("exec");
        let (_, steady) = c.execute(&inputs).expect("exec");
        println!(
            "MLP_1 b512   first run (init: prepack + compensation): {:.3} ms (init {:.3} ms)",
            first.wall.as_secs_f64() * 1e3,
            first.init_wall.as_secs_f64() * 1e3
        );
        println!(
            "MLP_1 b512   steady state (cached)                   : {:.3} ms",
            steady.wall.as_secs_f64() * 1e3
        );
        assert_eq!(c.executable().init_runs(), 1);
        println!();
    }

    if what == "buffers" || what == "all" {
        println!("== ablation: buffer reuse + tensor shrink ==");
        for (reuse, shrink) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut o = opts(threads);
            o.reuse_buffers = reuse;
            o.shrink_tensors = shrink;
            let machine = o.machine.clone();
            let g = workloads::mlp_f32(512, &workloads::mlp2_layers(), 1);
            let c = Compiler::new(o).compile(g).expect("compile");
            let inputs = random_inputs(&workloads::mlp_f32(512, &workloads::mlp2_layers(), 1), 3);
            let (_, stats) = c.execute(&inputs).expect("exec");
            let ms = machine.cycles_to_ms(c.project().cycles);
            println!(
                "MLP_2 b512   reuse={reuse:<5} shrink={shrink:<5} : peak temp {:>10} bytes, projected {ms:.4} ms",
                stats.peak_temp_bytes
            );
        }
        println!();
    }

    if what == "kslice" || what == "all" {
        use gc_core::pipeline::{optimize_graph, partition_graph};
        use gc_lowering::{lower_partitions, LowerOptions};

        println!("== ablation: k-slicing template (projected ms) ==");
        // where the search selects it end-to-end: deep reduction, small
        // M x N, pool wider than the M x N block grid
        let mut wide = MachineDescriptor::xeon_8358();
        wide.cores = 128;
        for on in [true, false] {
            let mut o = CompileOptions::new(wide.clone());
            o.threads = threads;
            o.k_slice = on;
            let ms = project_ms(
                o,
                workloads::single_matmul(16, 64, 8192, workloads::Precision::F32, 1),
            );
            println!("16x64x8192 fp32 @128 cores   k_slice={on:<5} : {ms:.4}");
        }
        // the merged coarse-fusion path of small-batch MLP_1, with the
        // merge gate bypassed: this is what coarse fusion would cost
        // with and without k-slicing, versus the split schedules the
        // cost model actually keeps
        let machine = MachineDescriptor::xeon_8358();
        for (name, build) in [
            (
                "MLP_1 b16 fp32",
                Box::new(|| workloads::mlp_f32(16, &workloads::mlp1_layers(), 1))
                    as Box<dyn Fn() -> gc_graph::Graph>,
            ),
            (
                "MLP_1 b16 int8",
                Box::new(|| workloads::mlp_int8(16, &workloads::mlp1_layers(), 1)),
            ),
        ] {
            let opts = CompileOptions::new(machine.clone());
            let mut g = build();
            optimize_graph(&mut g, &opts).expect("optimize");
            let (parts, _) = partition_graph(&g, &opts).expect("partition");
            // one forced group over every main partition
            let merged_groups = gc_graph::CoarseGroups {
                groups: vec![(0..parts.parts.len()).collect()],
            };
            let split_groups = gc_graph::CoarseGroups {
                groups: (0..parts.parts.len()).map(|pi| vec![pi]).collect(),
            };
            let p = |groups: &gc_graph::CoarseGroups, k_slice: bool| {
                let lo = LowerOptions {
                    k_slice,
                    force_coarse_merge: true,
                    ..LowerOptions::new(machine.clone())
                };
                let l = lower_partitions(&g, &parts, groups, &lo).expect("lower");
                machine.cycles_to_ms(gc_tir::sim::project(&l.module, &machine, 1).cycles)
            };
            println!(
                "{name}   merged+kslice {:.4} | merged-plain {:.4} | split (chosen) {:.4}",
                p(&merged_groups, true),
                p(&merged_groups, false),
                p(&split_groups, true),
            );
        }
    }
}
