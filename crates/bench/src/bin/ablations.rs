//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - `anchors`  — forced post-op anchor (#1 vs #2) and A-pack placement
//!   (anchor #2 vs #4), versus the cost-model choice;
//! - `layout`   — layout propagation on/off;
//! - `const`    — constant-weight caching: first execution (runs the
//!   init stage) vs steady state;
//! - `buffers`  — memory-buffer reuse + tensor-size optimization:
//!   peak temporary footprint and projected cycles;
//! - `kslice`   — the k-slicing matmul template: projected cycles with
//!   the knob on/off where the tunable-config search selects it (deep-K
//!   small-M×N on a wide pool), and the merged coarse-fusion path of
//!   small-batch MLP_1 with and without k-slicing (bypassing the merge
//!   gate, which on cost grounds prefers the split schedules);
//! - `ragged`   — pack-time padding + edge-tile kernels on Table 1's
//!   irregular shapes (MLP_2's prime k=479 first layer and friends):
//!   projected cycles with ragged blocking on vs the divisor-only
//!   degenerate blocking (`KB ∈ {1, k}` when k is prime);
//! - `simd`     — the explicit-SIMD microkernel backends vs the
//!   scalar-forced fallback: kernel-level GFLOP/s per family (via
//!   explicit [`gc_microkernel::arch::kernels`] handles, same process)
//!   and end-to-end MLP_1 wall time (via a `GC_FORCE_ISA=scalar`
//!   subprocess, since the process-wide dispatch table is resolved
//!   once and never changes).
//!
//! Usage: `ablations [anchors|layout|const|buffers|kslice|ragged|simd|all] [--threads N]`

use gc_bench::workloads::{self, mha_configs, random_inputs};
use gc_core::{CompileOptions, Compiler};
use gc_lowering::anchors::{PackPlacement, PostOpAnchor};
use gc_machine::MachineDescriptor;

fn opts(threads: Option<usize>) -> CompileOptions {
    let mut o = CompileOptions::new(MachineDescriptor::xeon_8358());
    o.threads = threads;
    o
}

fn project_ms(o: CompileOptions, g: gc_graph::Graph) -> f64 {
    let machine = o.machine.clone();
    let c = Compiler::new(o).compile(g).expect("compile");
    machine.cycles_to_ms(c.project().cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    // Hidden re-exec entry: measure MLP_1 end-to-end under whatever
    // GC_FORCE_ISA the parent set (the dispatch table is per-process).
    if args.iter().any(|a| a == "--e2e-child") {
        let ns = e2e_mlp1_wall_ns();
        println!("E2E_WALL_NS {ns}");
        return;
    }
    if !matches!(
        what.as_str(),
        "anchors" | "layout" | "const" | "buffers" | "kslice" | "ragged" | "simd" | "all"
    ) {
        eprintln!(
            "usage: ablations [anchors|layout|const|buffers|kslice|ragged|simd|all] [--threads N]"
        );
        std::process::exit(2);
    }
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok());

    let mlp = || workloads::mlp_f32(512, &workloads::mlp1_layers(), 1);
    let mha = || workloads::mha_f32(32, &mha_configs()[0]).0;

    if what == "anchors" || what == "all" {
        println!("== ablation: fusion anchors (projected ms) ==");
        for (name, g) in [("MLP_1 b512", mlp()), ("MHA_1 b32", mha())] {
            let auto = project_ms(opts(threads), g);
            println!("{name:<12} cost-model choice : {auto:.4}");
        }
        for anchor in [PostOpAnchor::P1, PostOpAnchor::P2] {
            for (name, g) in [("MLP_1 b512", mlp()), ("MHA_1 b32", mha())] {
                let mut o = opts(threads);
                o.forced_post_anchor = Some(anchor);
                let ms = project_ms(o, g);
                println!("{name:<12} post-op anchor {anchor:?} : {ms:.4}");
            }
        }
        for pack in [PackPlacement::PerTask, PackPlacement::PerKChunk] {
            for (name, g) in [("MLP_1 b512", mlp()), ("MHA_1 b32", mha())] {
                let mut o = opts(threads);
                o.forced_pack = Some(pack);
                let ms = project_ms(o, g);
                println!("{name:<12} A-pack {pack:?} : {ms:.4}");
            }
        }
        println!();
    }

    if what == "layout" || what == "all" {
        println!("== ablation: layout propagation (projected ms) ==");
        for on in [true, false] {
            let mut o = opts(threads);
            o.propagate_layouts = on;
            let ms = project_ms(o, mlp());
            println!("MLP_1 b512   propagate_layouts={on} : {ms:.4}");
        }
        println!();
    }

    if what == "const" || what == "all" {
        println!("== ablation: constant-weight caching (wall ms on host) ==");
        let g = mlp();
        let inputs = random_inputs(&g, 3);
        let c = Compiler::new(opts(threads)).compile(g).expect("compile");
        let (_, first) = c.execute(&inputs).expect("exec");
        let (_, steady) = c.execute(&inputs).expect("exec");
        println!(
            "MLP_1 b512   first run (init: prepack + compensation): {:.3} ms (init {:.3} ms)",
            first.wall.as_secs_f64() * 1e3,
            first.init_wall.as_secs_f64() * 1e3
        );
        println!(
            "MLP_1 b512   steady state (cached)                   : {:.3} ms",
            steady.wall.as_secs_f64() * 1e3
        );
        assert_eq!(c.executable().init_runs(), 1);
        println!();
    }

    if what == "buffers" || what == "all" {
        println!("== ablation: buffer reuse + tensor shrink ==");
        for (reuse, shrink) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut o = opts(threads);
            o.reuse_buffers = reuse;
            o.shrink_tensors = shrink;
            let machine = o.machine.clone();
            let g = workloads::mlp_f32(512, &workloads::mlp2_layers(), 1);
            let c = Compiler::new(o).compile(g).expect("compile");
            let inputs = random_inputs(&workloads::mlp_f32(512, &workloads::mlp2_layers(), 1), 3);
            let (_, stats) = c.execute(&inputs).expect("exec");
            let ms = machine.cycles_to_ms(c.project().cycles);
            println!(
                "MLP_2 b512   reuse={reuse:<5} shrink={shrink:<5} : peak temp {:>10} bytes, projected {ms:.4} ms",
                stats.peak_temp_bytes
            );
        }
        println!();
    }

    if what == "kslice" || what == "all" {
        use gc_core::pipeline::{optimize_graph, partition_graph};
        use gc_lowering::{lower_partitions, LowerOptions};

        println!("== ablation: k-slicing template (projected ms) ==");
        // where the search selects it end-to-end: deep reduction, small
        // M x N, pool wider than the M x N block grid
        let mut wide = MachineDescriptor::xeon_8358();
        wide.cores = 128;
        for on in [true, false] {
            let mut o = CompileOptions::new(wide.clone());
            o.threads = threads;
            o.k_slice = on;
            let ms = project_ms(
                o,
                workloads::single_matmul(16, 64, 8192, workloads::Precision::F32, 1),
            );
            println!("16x64x8192 fp32 @128 cores   k_slice={on:<5} : {ms:.4}");
        }
        // the merged coarse-fusion path of small-batch MLP_1, with the
        // merge gate bypassed: this is what coarse fusion would cost
        // with and without k-slicing, versus the split schedules the
        // cost model actually keeps
        let machine = MachineDescriptor::xeon_8358();
        for (name, build) in [
            (
                "MLP_1 b16 fp32",
                Box::new(|| workloads::mlp_f32(16, &workloads::mlp1_layers(), 1))
                    as Box<dyn Fn() -> gc_graph::Graph>,
            ),
            (
                "MLP_1 b16 int8",
                Box::new(|| workloads::mlp_int8(16, &workloads::mlp1_layers(), 1)),
            ),
        ] {
            let opts = CompileOptions::new(machine.clone());
            let mut g = build();
            optimize_graph(&mut g, &opts).expect("optimize");
            let (parts, _) = partition_graph(&g, &opts).expect("partition");
            // one forced group over every main partition
            let merged_groups = gc_graph::CoarseGroups {
                groups: vec![(0..parts.parts.len()).collect()],
            };
            let split_groups = gc_graph::CoarseGroups {
                groups: (0..parts.parts.len()).map(|pi| vec![pi]).collect(),
            };
            let p = |groups: &gc_graph::CoarseGroups, k_slice: bool| {
                let lo = LowerOptions {
                    k_slice,
                    force_coarse_merge: true,
                    ..LowerOptions::new(machine.clone())
                };
                let l = lower_partitions(&g, &parts, groups, &lo).expect("lower");
                machine.cycles_to_ms(gc_tir::sim::project(&l.module, &machine, 1).cycles)
            };
            println!(
                "{name}   merged+kslice {:.4} | merged-plain {:.4} | split (chosen) {:.4}",
                p(&merged_groups, true),
                p(&merged_groups, false),
                p(&split_groups, true),
            );
        }
        println!();
    }

    if what == "ragged" || what == "all" {
        println!("== ablation: ragged blocking (pack-time padding + edge tiles, projected ms) ==");
        // Table 1's irregular workload is MLP_2: its feature chain
        // 479 -> 1024 -> 1024 -> 512 -> 256 -> 1 opens on a prime
        // reduction dim (479), where divisor-only blocking degenerates
        // to KB ∈ {1, 479}, and closes on an n=1 head.
        for b in [32usize, 128, 256, 512] {
            for prec in [workloads::Precision::F32, workloads::Precision::Int8] {
                let ms_for = |ragged: bool| {
                    let mut o = opts(threads);
                    o.ragged = ragged;
                    let g = match prec {
                        workloads::Precision::F32 => {
                            workloads::mlp_f32(b, &workloads::mlp2_layers(), 1)
                        }
                        workloads::Precision::Int8 => {
                            workloads::mlp_int8(b, &workloads::mlp2_layers(), 1)
                        }
                    };
                    project_ms(o, g)
                };
                let (on, off) = (ms_for(true), ms_for(false));
                println!(
                    "MLP_2 b{b:<4} {prec:?}  ragged {on:.4} | divisor-only {off:.4} | speedup {:.2}x",
                    off / on
                );
            }
        }
        // Isolated irregular single matmuls: the m/n remainders against
        // power-of-two tiles are where divisor-only truly degenerates
        // (nb=1 register tiles). The 1.00x rows are the projection gate
        // at work: padding k to the lane grid buys compute efficiency
        // but streams ~7% more bytes, so on memory-bound layers (and
        // under VNNI's 4-element dot groups, which shrug off prime k)
        // the compiler falls back to the exact divisor-only plan.
        let shapes = [
            ("255x255x255 fp32", 255, 255, 255, workloads::Precision::F32),
            ("257x512x512 fp32", 257, 512, 512, workloads::Precision::F32),
            (
                "256x1024x479 fp32",
                256,
                1024,
                479,
                workloads::Precision::F32,
            ),
            (
                "256x1024x479 int8",
                256,
                1024,
                479,
                workloads::Precision::Int8,
            ),
        ];
        for (name, m, n, k, prec) in shapes {
            let ms_for = |ragged: bool| {
                let mut o = opts(threads);
                o.ragged = ragged;
                project_ms(o, workloads::single_matmul(m, n, k, prec, 1))
            };
            let (on, off) = (ms_for(true), ms_for(false));
            println!(
                "{name:<20} ragged {on:.4} | divisor-only {off:.4} | speedup {:.2}x",
                off / on
            );
        }
    }

    if what == "simd" || what == "all" {
        simd_ablation();
    }
}

/// Deterministic pseudo-random f32 fill in [-1, 1) (no RNG dependency
/// in the hot setup path).
fn xfill(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

/// Best-of-reps wall seconds for `f`.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// End-to-end MLP_1 b256 f32: compile once, best-of-5 execute wall ns.
fn e2e_mlp1_wall_ns() -> u64 {
    let g = workloads::mlp_f32(256, &workloads::mlp1_layers(), 1);
    let inputs = random_inputs(&g, 3);
    let c = Compiler::new(opts(None)).compile(g).expect("compile");
    c.execute(&inputs).expect("warmup");
    (best_secs(5, || {
        c.execute(&inputs).expect("exec");
    }) * 1e9) as u64
}

fn simd_ablation() {
    use gc_microkernel::arch::{detected_isa, kernels, vnni_active, Isa, Kernels};

    println!("== ablation: explicit SIMD vs scalar-forced microkernels ==");
    let best = detected_isa();
    println!(
        "detected isa: {best} (vnni int8 dot: {})",
        vnni_active(best)
    );

    let gflops = |k: &Kernels, m: usize, n: usize, kk: usize| -> f64 {
        let a = xfill(1, m * kk);
        let b = xfill(2, n * kk);
        let mut c = vec![0f32; m * n];
        k.gemm_f32(m, n, kk, &a, &b, &mut c); // warm
        let secs = best_secs(7, || k.gemm_f32(m, n, kk, &a, &b, &mut c));
        2.0 * (m * n * kk) as f64 / secs / 1e9
    };
    // Table 1 MLP layer shapes at batch 256 (MLP_1: 13->512->256->128,
    // MLP_2 opens on the prime k=479), run as single packed tiles.
    println!("-- brgemm f32 kernel (GFLOP/s, single core) --");
    let scalar = kernels(Isa::Scalar);
    let simd = kernels(best);
    let mut best_speedup = 0f64;
    for (name, m, n, k) in [
        ("MLP_1 L0 256x512x13", 256, 512, 13),
        ("MLP_1 L1 256x256x512", 256, 256, 512),
        ("MLP_1 L2 256x128x256", 256, 128, 256),
        ("MLP_2 L0 256x1024x479", 256, 1024, 479),
    ] {
        let (gs, gv) = (gflops(&scalar, m, n, k), gflops(&simd, m, n, k));
        let speedup = gv / gs;
        best_speedup = best_speedup.max(speedup);
        println!("{name:<24} scalar {gs:>6.2} | {best} {gv:>6.2} | speedup {speedup:.2}x");
    }
    assert!(
        best == Isa::Scalar || best_speedup >= 1.3,
        "explicit-SIMD brgemm f32 must clear 1.3x over scalar on a Table-1 MLP shape \
         (best observed {best_speedup:.2}x)"
    );

    println!("-- brgemm u8xi8 kernel (Gop/s, single core) --");
    for (name, m, n, k) in [
        ("MLP_1 L1 256x256x512", 256usize, 256usize, 512usize),
        ("MLP_2 L0 256x1024x479", 256, 1024, 479),
    ] {
        let a: Vec<u8> = xfill(3, m * k)
            .iter()
            .map(|x| (x.abs() * 200.0) as u8)
            .collect();
        let b: Vec<i8> = xfill(4, n * k).iter().map(|x| (x * 100.0) as i8).collect();
        let mut acc = vec![0i32; m * n];
        let mut gops = |kr: &Kernels| {
            kr.gemm_u8i8(m, n, k, &a, &b, &mut acc);
            let secs = best_secs(7, || kr.gemm_u8i8(m, n, k, &a, &b, &mut acc));
            2.0 * (m * n * k) as f64 / secs / 1e9
        };
        let (gs, gv) = (gops(&scalar), gops(&simd));
        println!(
            "{name:<24} scalar {gs:>6.2} | {best} {gv:>6.2} | speedup {:.2}x",
            gv / gs
        );
    }

    println!("-- eltwise / reduce kernels (GB/s, single core, 256 KiB slices) --");
    let n = 64 * 1024;
    let a = xfill(5, n);
    let b = xfill(6, n);
    let mut dst = vec![0f32; n];
    let report = |name: &str, gs: f64, gv: f64| {
        println!(
            "{name:<24} scalar {gs:>6.2} | {best} {gv:>6.2} | speedup {:.2}x",
            gv / gs
        );
    };
    let gbs_relu = |k: &Kernels, dst: &mut [f32]| {
        k.relu(&a, dst); // warm
        (n * 4) as f64 / best_secs(64, || k.relu(&a, dst)) / 1e9
    };
    report(
        "relu",
        gbs_relu(&scalar, &mut dst),
        gbs_relu(&simd, &mut dst),
    );
    let gbs_add = |k: &Kernels, dst: &mut [f32]| {
        k.binary_add(&a, &b, dst); // warm
        (n * 4) as f64 / best_secs(64, || k.binary_add(&a, &b, dst)) / 1e9
    };
    report(
        "binary_add",
        gbs_add(&scalar, &mut dst),
        gbs_add(&simd, &mut dst),
    );
    let gbs_sum = |k: &Kernels| {
        let mut acc = 0f64;
        acc += k.reduce_sum(&a) as f64; // warm
        let secs = best_secs(64, || acc += k.reduce_sum(&a) as f64);
        std::hint::black_box(acc);
        (n * 4) as f64 / secs / 1e9
    };
    report("reduce_sum", gbs_sum(&scalar), gbs_sum(&simd));

    // End-to-end: the dispatch table is resolved once per process, so
    // the scalar-forced run is a re-exec of this binary.
    println!("-- end-to-end MLP_1 b256 f32 (wall ms, this host) --");
    let exe = std::env::current_exe().expect("current_exe");
    let child_ns = |isa: &str| -> u64 {
        let out = std::process::Command::new(&exe)
            .args(["simd", "--e2e-child"])
            .env("GC_FORCE_ISA", isa)
            .output()
            .expect("spawn e2e child");
        assert!(out.status.success(), "e2e child failed: {out:?}");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find_map(|l| l.strip_prefix("E2E_WALL_NS ").and_then(|v| v.parse().ok()))
            .expect("child printed no E2E_WALL_NS")
    };
    let (ns_scalar, ns_simd) = (child_ns("scalar"), child_ns(best.name()));
    println!(
        "MLP_1 b256 f32           scalar-forced {:.3} | {best} {:.3} | speedup {:.2}x",
        ns_scalar as f64 / 1e6,
        ns_simd as f64 / 1e6,
        ns_scalar as f64 / ns_simd as f64
    );
}
