//! Regenerates the paper's Figure 8: MLP and MHA subgraph performance,
//! baseline vs compiler-without-coarse-fusion vs full compiler, FP32
//! and Int8.
//!
//! Usage: `fig8 [mlp|mha|all] [--quick] [--threads N]`

use gc_bench::experiments::{format_fig8, Harness};
use gc_bench::workloads::Precision;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if !matches!(what.as_str(), "mlp" | "mha" | "all") {
        eprintln!("usage: fig8 [mlp|mha|all] [--threads N] [--quick]");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut harness = if quick {
        Harness::quick()
    } else {
        Harness::default()
    };
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        match args.get(pos + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => harness.threads = Some(n),
            _ => {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            }
        }
    }

    if what == "mlp" || what == "all" {
        for precision in [Precision::F32, Precision::Int8] {
            println!("== Figure 8 / MLP / {precision} ==");
            let rows = harness.fig8_mlp(precision, quick);
            print!("{}", format_fig8(&rows));
            println!();
        }
    }
    if what == "mha" || what == "all" {
        for precision in [Precision::F32, Precision::Int8] {
            println!("== Figure 8 / MHA / {precision} ==");
            let rows = harness.fig8_mha(precision, quick);
            print!("{}", format_fig8(&rows));
            println!();
        }
    }
}
