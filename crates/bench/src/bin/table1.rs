//! Prints Table 1: the workload parameters of the evaluation.

use gc_bench::workloads;

fn main() {
    println!("Table 1. Workload parameters");
    println!(
        "{:<10} {:<12} {:<24} {:<16} {:<26} {:<6}",
        "workload", "data type", "input batch size", "sequence length", "hidden size", "heads"
    );
    let mlp_batches = workloads::mlp_batch_sizes()
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let fmt_layers = |l: &[usize]| {
        l.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("x")
    };
    println!(
        "{:<10} {:<12} {:<24} {:<16} {:<26} {:<6}",
        "MLP_1",
        "Int8, FP32",
        mlp_batches,
        "N/A",
        fmt_layers(&workloads::mlp1_layers()),
        "N/A"
    );
    println!(
        "{:<10} {:<12} {:<24} {:<16} {:<26} {:<6}",
        "MLP_2",
        "Int8, FP32",
        mlp_batches,
        "N/A",
        fmt_layers(&workloads::mlp2_layers()),
        "N/A"
    );
    let mha_batches = workloads::mha_batch_sizes()
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    for cfg in workloads::mha_configs() {
        println!(
            "{:<10} {:<12} {:<24} {:<16} {:<26} {:<6}",
            cfg.name, "Int8, FP32", mha_batches, cfg.seq, cfg.hidden, cfg.heads
        );
    }
}
