//! Shard scaling: scatter-execute-fuse throughput vs a single engine.
//!
//! A closed-loop harness: N client threads each fire `requests`
//! *batched* inferences (default 32 rows — the throughput regime,
//! where one request is big enough for [`gc_serve::ShardPlan`] to
//! scatter it) against one served model, once unsharded and once per
//! shard count in `--shards`. The total engine thread budget is fixed
//! (`--threads`), so 4 shards × T/4 threads competes against 1 engine
//! × T threads on the same cores: the measured delta is partition +
//! per-shard dispatch + fusion, not extra hardware.
//!
//! Two workloads: the MLP_2 encoder stack (weight-heavy matmul chain)
//! and the f32 decode-attention step (cache-bandwidth-bound), both
//! batched along the leading request dim.
//!
//! Flags: `--clients N` (default 4), `--requests N` per client
//! (default 30), `--rows N` per request (default 32), `--threads N`
//! total engine budget (default 4), `--shards a,b,c` (default 1,2,4),
//! `--stats` to dump full counter snapshots.
//!
//! The printed header records the host's core count: on a 1-core
//! container every pool is oversubscribed and sharding can only add
//! overhead, which is itself the number worth snapshotting (see
//! results/sharding.txt and EXPERIMENTS.md).

use gc_bench::workloads;
use gc_core::CompileOptions;
use gc_graph::Graph;
use gc_machine::MachineDescriptor;
use gc_serve::{Model, PlanCache, ServeConfig, StatsSnapshot};
use gc_tir::InitCache;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct RunResult {
    elapsed: Duration,
    requests: u64,
    units: u64,
    stats: StatsSnapshot,
}

fn serve_config(threads: usize, shards: Option<usize>) -> ServeConfig {
    let base = ServeConfig {
        compile: CompileOptions {
            threads: Some(threads),
            ..CompileOptions::new(MachineDescriptor::xeon_8358())
        },
        queue_cap: 1024,
        // Every configuration pays the same queue + dispatcher hop, so
        // the measured difference is scatter/fuse, not path length.
        fast_path: false,
        // Private caches so configurations don't share plans.
        plan_cache: Some(Arc::new(PlanCache::new())),
        init_cache: Some(Arc::new(InitCache::new())),
        ..ServeConfig::default()
    };
    match shards {
        // with_shards splits the same total budget across the fleet.
        Some(n) => base.with_shards(n),
        None => base,
    }
}

fn run(
    template: Graph,
    request: impl Fn(usize) -> Graph,
    cfg: ServeConfig,
    clients: usize,
    per_client: usize,
    rows: usize,
) -> RunResult {
    let model = Arc::new(Model::load(template, cfg).expect("load model"));
    // Warm the bucket (and every shard slice of it) before timing.
    let warm = workloads::random_inputs(&request(rows), 1);
    model.session().infer(&warm).expect("warm-up");

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for c in 0..clients {
        let model = Arc::clone(&model);
        let barrier = Arc::clone(&barrier);
        let inputs = workloads::random_inputs(&request(rows), 100 + c as u64);
        handles.push(std::thread::spawn(move || {
            let session = model.session();
            barrier.wait();
            for _ in 0..per_client {
                loop {
                    match session.infer(&inputs) {
                        Ok(_) => break,
                        Err(gc_serve::ServeError::Busy { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("infer: {e}"),
                    }
                }
            }
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = t0.elapsed();
    RunResult {
        elapsed,
        requests: (clients * per_client) as u64,
        units: (clients * per_client * rows) as u64,
        stats: model.stats(),
    }
}

fn report(label: &str, r: &RunResult, baseline_ups: f64, dump: bool) {
    let ups = r.units as f64 / r.elapsed.as_secs_f64();
    let fuse = if r.stats.scattered_batches > 0 {
        format!(
            "{:>5.1}us/batch",
            r.stats.fuse_us as f64 / r.stats.scattered_batches as f64
        )
    } else {
        "    n/a".into()
    };
    println!(
        "{label:<14} {:>9.0} units/s   {:>8.0} req/s   scattered {:>4}   fuse {fuse}   vs 1 engine {:>5.2}x",
        ups,
        r.requests as f64 / r.elapsed.as_secs_f64(),
        r.stats.scattered_batches,
        ups / baseline_ups,
    );
    if dump {
        print!("{}", r.stats);
        println!();
    }
}

struct BenchOpts {
    shard_counts: Vec<usize>,
    clients: usize,
    per_client: usize,
    rows: usize,
    threads: usize,
    dump: bool,
}

fn bench_workload(name: &str, template: Graph, request: &dyn Fn(usize) -> Graph, o: &BenchOpts) {
    println!(
        "== {name}: {}-row requests, total budget {} threads ==",
        o.rows, o.threads
    );
    let base = run(
        template.clone(),
        request,
        serve_config(o.threads, None),
        o.clients,
        o.per_client,
        o.rows,
    );
    let base_ups = base.units as f64 / base.elapsed.as_secs_f64();
    report("1 engine", &base, base_ups, o.dump);
    for &n in &o.shard_counts {
        let r = run(
            template.clone(),
            request,
            serve_config(o.threads, Some(n)),
            o.clients,
            o.per_client,
            o.rows,
        );
        report(&format!("{n} shard(s)"), &r, base_ups, o.dump);
    }
    println!();
}

fn main() {
    let mut clients = 4usize;
    let mut per_client = 30usize;
    let mut rows = 32usize;
    let mut threads = 4usize;
    let mut shard_counts = vec![1usize, 2, 4];
    let mut dump_stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{a} needs a number"))
        };
        match a.as_str() {
            "--clients" => clients = num(&mut args),
            "--requests" => per_client = num(&mut args),
            "--rows" => rows = num(&mut args),
            "--threads" => threads = num(&mut args),
            "--shards" => {
                shard_counts = args
                    .next()
                    .expect("--shards needs a list")
                    .split(',')
                    .map(|s| s.parse().expect("--shards: bad count"))
                    .collect();
            }
            "--stats" => dump_stats = true,
            other => panic!("unknown flag {other}"),
        }
    }

    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!("shard_bench: scatter-execute-fuse scaling");
    println!(
        "host cores = {cores}, {clients} clients x {per_client} requests, shard counts {shard_counts:?}"
    );
    if cores < threads {
        println!("NOTE: thread budget {threads} oversubscribes {cores} core(s); expect overhead, not speedup");
    }
    println!();

    let opts = BenchOpts {
        shard_counts,
        clients,
        per_client,
        rows,
        threads,
        dump: dump_stats,
    };
    bench_workload(
        "MLP_2 f32",
        workloads::mlp_f32(1, &workloads::mlp2_layers(), 7),
        &|r| workloads::mlp_f32(r, &workloads::mlp2_layers(), 7),
        &opts,
    );
    bench_workload(
        "decode f32",
        workloads::decode_f32(1, 64, 64),
        &|r| workloads::decode_f32(r, 64, 64),
        &opts,
    );
}
