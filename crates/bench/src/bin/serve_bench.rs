//! Serving throughput: dynamic batching vs per-request dispatch.
//!
//! A closed-loop harness: N client threads each fire `requests`
//! single-row MLP_2 inferences (the latency regime — at batch 1 every
//! request re-streams ~8.8 MB of weights, which coalescing amortizes)
//! against one served model,
//! first with coalescing disabled (`max_batch = 1`), then with the
//! dynamic batcher on. Prints requests/sec for both and the speedup.
//!
//! Flags: `--clients N` (default 16), `--requests N` per client
//! (default 200), `--threads N` engine pool width (default 2),
//! `--stats` to dump the full per-model counter snapshot.

use gc_bench::workloads;
use gc_core::CompileOptions;
use gc_machine::MachineDescriptor;
use gc_serve::{Model, PlanCache, ServeConfig, StatsSnapshot};
use gc_tensor::{DataType, Tensor};
use gc_tir::InitCache;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct RunResult {
    elapsed: Duration,
    requests: u64,
    stats: StatsSnapshot,
}

fn serve_config(threads: usize, max_batch: usize, max_delay: Duration) -> ServeConfig {
    ServeConfig {
        compile: CompileOptions {
            threads: Some(threads),
            ..CompileOptions::new(MachineDescriptor::xeon_8358())
        },
        max_batch,
        max_delay,
        queue_cap: 1024,
        // Both configurations pay the same queue + dispatcher hop, so
        // the measured difference is pure coalescing, not path length.
        fast_path: false,
        // Private caches so the two configurations don't share plans.
        plan_cache: Some(Arc::new(PlanCache::new())),
        init_cache: Some(Arc::new(InitCache::new())),
        ..ServeConfig::default()
    }
}

fn run(cfg: ServeConfig, clients: usize, per_client: usize) -> RunResult {
    let model = Arc::new(
        Model::load(workloads::mlp_f32(1, &workloads::mlp2_layers(), 7), cfg).expect("load model"),
    );
    // Warm every bucket the run can hit before timing starts.
    let warm = Tensor::random(&[1, 479], DataType::F32, 1);
    model.session().infer(&[warm]).expect("warm-up");

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for c in 0..clients {
        let model = Arc::clone(&model);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let session = model.session();
            let x = Tensor::random(&[1, 479], DataType::F32, 100 + c as u64);
            barrier.wait();
            for _ in 0..per_client {
                loop {
                    match session.infer(std::slice::from_ref(&x)) {
                        Ok(_) => break,
                        Err(gc_serve::ServeError::Busy { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("infer: {e}"),
                    }
                }
            }
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = t0.elapsed();
    RunResult {
        elapsed,
        requests: (clients * per_client) as u64,
        stats: model.stats(),
    }
}

fn main() {
    let mut clients = 16usize;
    let mut per_client = 200usize;
    let mut threads = 2usize;
    let mut dump_stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{a} needs a number"))
        };
        match a.as_str() {
            "--clients" => clients = num(&mut args),
            "--requests" => per_client = num(&mut args),
            "--threads" => threads = num(&mut args),
            "--stats" => dump_stats = true,
            other => panic!("unknown flag {other}"),
        }
    }

    println!("serve_bench: MLP_2 f32, 1-row requests (latency regime)");
    println!("{clients} clients x {per_client} requests, engine pool = {threads} threads");
    println!();

    let per_request = run(
        serve_config(threads, 1, Duration::ZERO),
        clients,
        per_client,
    );
    let batched = run(
        serve_config(threads, 32, Duration::from_micros(300)),
        clients,
        per_client,
    );

    let rps = |r: &RunResult| r.requests as f64 / r.elapsed.as_secs_f64();
    let fmt = |label: &str, r: &RunResult| {
        println!(
            "{label:<22} {:>10.0} req/s   coalesce {:>5}   p50 {:>6}   p99 {:>6}",
            rps(r),
            r.stats
                .coalesce_ratio()
                .map_or("n/a".into(), |v| format!("{v:.2}")),
            r.stats.p50_us.map_or("n/a".into(), |v| format!("{v}us")),
            r.stats.p99_us.map_or("n/a".into(), |v| format!("{v}us")),
        );
    };
    fmt("per-request dispatch", &per_request);
    fmt("dynamic batching", &batched);
    println!();
    println!(
        "batching speedup: {:.2}x requests/sec",
        rps(&batched) / rps(&per_request)
    );

    if dump_stats {
        println!();
        println!("--- per-request dispatch stats ---");
        print!("{}", per_request.stats);
        println!("--- dynamic batching stats ---");
        print!("{}", batched.stats);
    }
}
