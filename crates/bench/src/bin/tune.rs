//! Measured autotuning driver: tune the Table-1 workloads against a
//! persistent tuning database and report analytic-vs-measured projected
//! cycles per workload.
//!
//! Usage: `tune [mlp1|mlp2|mha|all] [--db PATH] [--trials N] [--topk K]
//!               [--threads N] [--quick] [--expect-warm]`
//!
//! `--db PATH` persists records across runs (a second run against the
//! same database warm-starts every workload with zero measured trials).
//! `--expect-warm` exits nonzero if any workload had to measure — the
//! CI smoke step uses it to prove the round trip.

use gc_bench::workloads::{self, Precision};
use gc_core::{tune_graph, CompileOptions, TuneConfig, TuneReport, TuningDb};
use gc_machine::MachineDescriptor;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: tune [mlp1|mlp2|mha|all] [--db PATH] [--trials N] [--topk K] \
         [--threads N] [--quick] [--expect-warm]"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|p| args.get(p + 1).cloned().unwrap_or_else(|| usage()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| {
            !a.starts_with("--") && {
                // skip values consumed by flags
                let prev = args.iter().position(|x| x == *a).unwrap_or(0);
                prev == 0
                    || !matches!(
                        args[prev - 1].as_str(),
                        "--db" | "--trials" | "--topk" | "--threads"
                    )
            }
        })
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if !matches!(what.as_str(), "mlp1" | "mlp2" | "mha" | "all") {
        usage();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    let parse = |s: Option<String>, d: usize| -> usize {
        s.map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(d)
    };
    let cfg = TuneConfig {
        top_k: parse(flag_value(&args, "--topk"), 4),
        max_trials: parse(flag_value(&args, "--trials"), if quick { 6 } else { 24 }),
        wall_reps: if quick { 1 } else { 3 },
    };
    let threads = parse(flag_value(&args, "--threads"), 1);

    let db = match flag_value(&args, "--db") {
        Some(path) => match TuningDb::open(&path) {
            Ok(db) => Arc::new(db),
            Err(e) => {
                eprintln!("tune: cannot open database {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Arc::new(TuningDb::in_memory()),
    };
    let preloaded = db.len();

    let mut opts = CompileOptions::new(MachineDescriptor::xeon_8358());
    opts.threads = Some(threads);

    // workload name → graph, one representative batch per workload in
    // quick mode, the Table-1 batch sweep otherwise
    let batches: Vec<usize> = if quick { vec![16] } else { vec![16, 64, 256] };
    let mut jobs: Vec<(String, gc_graph::Graph)> = Vec::new();
    for &b in &batches {
        if what == "mlp1" || what == "all" {
            jobs.push((
                format!("MLP_1/f32/b{b}"),
                workloads::mlp_f32(b, &workloads::mlp1_layers(), 7),
            ));
        }
        if what == "mlp2" || what == "all" {
            jobs.push((
                format!("MLP_2/f32/b{b}"),
                workloads::mlp_f32(b, &workloads::mlp2_layers(), 11),
            ));
        }
        if (what == "mha" || what == "all") && !quick {
            let cfg_mha = &workloads::mha_configs()[0];
            let (g, _) = workloads::mha_f32(b, cfg_mha);
            jobs.push((format!("MHA/f32/b{b}"), g));
        }
    }
    let _ = Precision::F32; // precision sweep rides on the workload name

    println!(
        "database: {} ({} record(s) preloaded)",
        db.path()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<in-memory>".into()),
        preloaded
    );
    println!(
        "budget: top-{} candidates/point, {} trial(s) max, threads {}",
        cfg.top_k, cfg.max_trials, threads
    );
    println!(
        "{:<16} {:>6} {:>7} {:>12} {:>12} {:>8}  warm",
        "workload", "points", "trials", "analytic", "tuned", "speedup"
    );

    let mut reports: Vec<TuneReport> = Vec::new();
    for (name, graph) in &jobs {
        match tune_graph(graph, &opts, &db, &cfg) {
            Ok(r) => {
                println!(
                    "{:<16} {:>6} {:>7} {:>12.0} {:>12.0} {:>7.3}x  {}",
                    name,
                    r.choice_points,
                    r.trials,
                    r.analytic_cycles,
                    r.best_cycles,
                    r.speedup(),
                    if r.warm_start { "yes" } else { "no" },
                );
                reports.push(r);
            }
            Err(e) => {
                eprintln!("tune: {name}: {e}");
                std::process::exit(1);
            }
        }
    }

    if db.path().is_some() {
        if let Err(e) = db.save() {
            eprintln!("tune: saving database failed: {e}");
            std::process::exit(1);
        }
        println!("saved {} record(s)", db.len());
    }

    let measured: usize = reports.iter().map(|r| r.trials).sum();
    let warm = reports.iter().filter(|r| r.warm_start).count();
    println!(
        "summary: {} workload(s), {} warm start(s), {} measured trial(s)",
        reports.len(),
        warm,
        measured
    );
    if expect_warm && measured > 0 {
        eprintln!("tune: --expect-warm but {measured} trial(s) were measured");
        std::process::exit(1);
    }
}
