//! Regenerates the paper's Figure 7: individual matmul performance,
//! compiler-generated kernel vs expert-tuned primitive, over every
//! layer shape of both MLP workloads.
//!
//! Usage: `fig7 [fp32|int8|all] [--threads N]`

use gc_bench::experiments::{format_fig7, Harness};
use gc_bench::workloads::Precision;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if !matches!(what.as_str(), "fp32" | "int8" | "all") {
        eprintln!("usage: fig7 [fp32|int8|all] [--threads N]");
        std::process::exit(2);
    }
    let mut harness = Harness::quick();
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        match args.get(pos + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => harness.threads = Some(n),
            _ => {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            }
        }
    }
    for precision in [Precision::F32, Precision::Int8] {
        let run = matches!(
            (what.as_str(), precision),
            ("all", _) | ("fp32", Precision::F32) | ("int8", Precision::Int8)
        );
        if run {
            println!("== Figure 7 / individual matmul / {precision} ==");
            let rows = harness.fig7(precision);
            print!("{}", format_fig7(&rows));
            println!();
        }
    }
}
