//! Workload generators for the paper's evaluation (Table 1).
//!
//! | Workload | dtype      | batch sizes           | seq | hidden sizes            | heads |
//! |----------|------------|-----------------------|-----|-------------------------|-------|
//! | MLP_1    | Int8, FP32 | 32..512               | –   | 13×512×256×128          | –     |
//! | MLP_2    | Int8, FP32 | 32..512               | –   | 479×1024×1024×512×256×1 | –     |
//! | MHA_1    | Int8, FP32 | 32, 64, 128           | 128 | 768                     | 8     |
//! | MHA_2    | Int8, FP32 | 32, 64, 128           | 128 | 768                     | 12    |
//! | MHA_3    | Int8, FP32 | 32, 64, 128           | 384 | 1024                    | 8     |
//! | MHA_4    | Int8, FP32 | 32, 64, 128           | 512 | 1024                    | 16    |
//!
//! MLP weights come from the MLPerf DLRM model; MHA shapes from BERT.

use gc_graph::{BinaryKind, Graph, LtId, OpKind, UnaryKind};
use gc_tensor::{DataType, QuantParams, Tensor, TensorDesc};

/// Numeric precision of a workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit float.
    F32,
    /// Asymmetric u8 activations × symmetric i8 weights.
    Int8,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::F32 => f.write_str("fp32"),
            Precision::Int8 => f.write_str("int8"),
        }
    }
}

/// The MLP hidden-layer progressions of Table 1.
pub fn mlp1_layers() -> Vec<usize> {
    vec![13, 512, 256, 128]
}

/// MLP_2's layer sizes.
pub fn mlp2_layers() -> Vec<usize> {
    vec![479, 1024, 1024, 512, 256, 1]
}

/// Table 1 MLP batch sizes.
pub fn mlp_batch_sizes() -> Vec<usize> {
    vec![32, 64, 128, 256, 512]
}

/// Table 1 MHA batch sizes.
pub fn mha_batch_sizes() -> Vec<usize> {
    vec![32, 64, 128]
}

/// One MHA configuration from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhaConfig {
    /// Workload name ("MHA_1"..).
    pub name: &'static str,
    /// Sequence length.
    pub seq: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
}

/// The four MHA configurations of Table 1.
pub fn mha_configs() -> Vec<MhaConfig> {
    vec![
        MhaConfig {
            name: "MHA_1",
            seq: 128,
            hidden: 768,
            heads: 8,
        },
        MhaConfig {
            name: "MHA_2",
            seq: 128,
            hidden: 768,
            heads: 12,
        },
        MhaConfig {
            name: "MHA_3",
            seq: 384,
            hidden: 1024,
            heads: 8,
        },
        MhaConfig {
            name: "MHA_4",
            seq: 512,
            hidden: 1024,
            heads: 16,
        },
    ]
}

/// Build an f32 MLP graph: `x -> [matmul -> relu]*` over `layers`
/// feature sizes (`layers[0]` is the input feature count). The final
/// layer is linear (no relu), matching DLRM's top MLP.
///
/// Returns the graph; input is `[batch, layers[0]]`.
pub fn mlp_f32(batch: usize, layers: &[usize], seed: u64) -> Graph {
    let mut g = Graph::new();
    let mut cur = g.add_input(TensorDesc::new([batch, layers[0]], DataType::F32), "x");
    for (i, w) in layers.windows(2).enumerate() {
        let (k, n) = (w[0], w[1]);
        let weight = g.add_constant(
            Tensor::random(&[k, n], DataType::F32, seed + i as u64),
            &format!("w{i}"),
        );
        let mm = g.add_op(OpKind::MatMul, &[cur, weight]).expect("matmul");
        cur = if i + 2 < layers.len() {
            g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm])
                .expect("relu")
        } else {
            mm
        };
    }
    g.mark_output(cur);
    g
}

/// Quantization parameters used by the int8 workloads.
pub fn default_qparams() -> (QuantParams, f32, QuantParams) {
    (
        QuantParams::new(0.02, 8),  // activations (asymmetric)
        0.05,                       // weight scale (symmetric)
        QuantParams::new(0.04, 12), // outputs
    )
}

/// Build the framework-style *quantized* MLP graph: u8 input, each layer
/// `quantize(relu(dequant(a) x dequant(w)))`, exactly the pattern the
/// low-precision conversion pass rewrites to int8 matmuls.
pub fn mlp_int8(batch: usize, layers: &[usize], seed: u64) -> Graph {
    let (a_q, w_s, out_q) = default_qparams();
    let mut g = Graph::new();
    let mut cur = g.add_input(TensorDesc::new([batch, layers[0]], DataType::U8), "x_q");
    let n_layers = layers.len() - 1;
    for (i, w) in layers.windows(2).enumerate() {
        let (k, n) = (w[0], w[1]);
        let weight = g.add_constant(
            Tensor::random(&[k, n], DataType::I8, seed + i as u64),
            &format!("w{i}_q"),
        );
        let a_f = g
            .add_op(OpKind::Dequantize { params: a_q }, &[cur])
            .expect("dq a");
        let w_f = g
            .add_op(
                OpKind::Dequantize {
                    params: QuantParams::symmetric(w_s),
                },
                &[weight],
            )
            .expect("dq w");
        let mm = g.add_op(OpKind::MatMul, &[a_f, w_f]).expect("matmul");
        let act = if i + 1 < n_layers {
            g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm])
                .expect("relu")
        } else {
            mm
        };
        cur = g
            .add_op(
                OpKind::Quantize {
                    dtype: DataType::U8,
                    // chain uses the activation params so the next
                    // layer's dequantize matches
                    params: if i + 1 < n_layers { a_q } else { out_q },
                },
                &[act],
            )
            .expect("quantize");
    }
    g.mark_output(cur);
    g
}

/// Build the MHA scaled-dot-product-attention subgraph (f32):
///
/// ```text
/// scores = softmax(Q x K^T / sqrt(d) + mask)
/// out    = scores x V
/// ```
///
/// Inputs: `Q`, `K`, `V` of `[batch*heads, seq, head_dim]` and a mask of
/// `[batch*heads, 1, seq]` (broadcast over query rows). Returns the
/// graph and the head dimension.
pub fn mha_f32(batch: usize, cfg: &MhaConfig) -> (Graph, usize) {
    let head_dim = cfg.hidden / cfg.heads;
    let bh = batch * cfg.heads;
    let mut g = Graph::new();
    let q = g.add_input(TensorDesc::new([bh, cfg.seq, head_dim], DataType::F32), "q");
    let k = g.add_input(TensorDesc::new([bh, cfg.seq, head_dim], DataType::F32), "k");
    let v = g.add_input(TensorDesc::new([bh, cfg.seq, head_dim], DataType::F32), "v");
    let mask = g.add_input(TensorDesc::new([bh, 1, cfg.seq], DataType::F32), "mask");
    let scale = g.add_constant(Tensor::scalar_f32((head_dim as f32).sqrt()), "sqrt_d");

    let kt = g.add_op(OpKind::Transpose, &[k]).expect("k^t");
    let scores = g.add_op(OpKind::MatMul, &[q, kt]).expect("qk");
    let scaled = g
        .add_op(OpKind::Binary(BinaryKind::Div), &[scores, scale])
        .expect("scale");
    let masked = g
        .add_op(OpKind::Binary(BinaryKind::Add), &[scaled, mask])
        .expect("mask");
    let probs = g.add_op(OpKind::Softmax, &[masked]).expect("softmax");
    let out = g.add_op(OpKind::MatMul, &[probs, v]).expect("pv");
    g.mark_output(out);
    (g, head_dim)
}

/// Int8 MHA: quantized Q/K (dequantized before the first batch matmul),
/// f32 softmax, quantized probs × quantized V for the second matmul.
/// This mirrors the evaluation's int8 MHA where both batch matmuls run
/// in int8 and the softmax stays in f32.
pub fn mha_int8(batch: usize, cfg: &MhaConfig) -> (Graph, usize) {
    let head_dim = cfg.hidden / cfg.heads;
    let bh = batch * cfg.heads;
    let (a_q, w_s, _) = default_qparams();
    let p_q = QuantParams::new(1.0 / 255.0, 0); // probs in [0,1]
    let mut g = Graph::new();
    let q = g.add_input(
        TensorDesc::new([bh, cfg.seq, head_dim], DataType::U8),
        "q_q",
    );
    let k = g.add_input(
        TensorDesc::new([bh, cfg.seq, head_dim], DataType::I8),
        "k_q",
    );
    let v = g.add_input(
        TensorDesc::new([bh, cfg.seq, head_dim], DataType::I8),
        "v_q",
    );
    let mask = g.add_input(TensorDesc::new([bh, 1, cfg.seq], DataType::F32), "mask");
    let scale = g.add_constant(Tensor::scalar_f32((head_dim as f32).sqrt()), "sqrt_d");

    let q_f = g.add_op(OpKind::Dequantize { params: a_q }, &[q]).unwrap();
    let k_f = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(w_s),
            },
            &[k],
        )
        .unwrap();
    let kt = g.add_op(OpKind::Transpose, &[k_f]).unwrap();
    let scores = g.add_op(OpKind::MatMul, &[q_f, kt]).unwrap();
    let scaled = g
        .add_op(OpKind::Binary(BinaryKind::Div), &[scores, scale])
        .unwrap();
    let masked = g
        .add_op(OpKind::Binary(BinaryKind::Add), &[scaled, mask])
        .unwrap();
    let probs = g.add_op(OpKind::Softmax, &[masked]).unwrap();
    let probs_q = g
        .add_op(
            OpKind::Quantize {
                dtype: DataType::U8,
                params: p_q,
            },
            &[probs],
        )
        .unwrap();
    let p_f = g
        .add_op(OpKind::Dequantize { params: p_q }, &[probs_q])
        .unwrap();
    let v_f = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(w_s),
            },
            &[v],
        )
        .unwrap();
    let out = g.add_op(OpKind::MatMul, &[p_f, v_f]).unwrap();
    g.mark_output(out);
    (g, head_dim)
}

/// Build a one-op f32 decode-attention graph: one masked decode step of
/// `rows` independent heads against KV caches of capacity `cap`.
///
/// Inputs, in the order gc-serve's decode scheduler expects:
/// `q [rows, 1, head_dim]`, `k_cache [rows, cap, head_dim]`,
/// `v_cache [rows, cap, head_dim]`, `mask [rows, 1, cap]`.
pub fn decode_f32(rows: usize, cap: usize, head_dim: usize) -> Graph {
    let mut g = Graph::new();
    let q = g.add_input(TensorDesc::new([rows, 1, head_dim], DataType::F32), "q");
    let k = g.add_input(
        TensorDesc::new([rows, cap, head_dim], DataType::F32),
        "k_cache",
    );
    let v = g.add_input(
        TensorDesc::new([rows, cap, head_dim], DataType::F32),
        "v_cache",
    );
    let mask = g.add_input(TensorDesc::new([rows, 1, cap], DataType::F32), "mask");
    let out = g
        .add_op(OpKind::DecodeAttention, &[q, k, v, mask])
        .expect("decode_attention");
    g.mark_output(out);
    g
}

/// Int8 decode step: the [`mha_int8`] chain at query length 1. Built
/// pre-decomposed (dequantize → transpose → matmul → … → quantized
/// probs × V) so the low-precision pass legalizes both matmuls to int8,
/// exactly as it does for the encoder workload. Caches are stored
/// quantized (`k_cache`/`v_cache` i8, `q` u8); the mask stays f32.
pub fn decode_int8(rows: usize, cap: usize, head_dim: usize) -> Graph {
    let (a_q, w_s, _) = default_qparams();
    let p_q = QuantParams::new(1.0 / 255.0, 0); // probs in [0,1]
    let mut g = Graph::new();
    let q = g.add_input(TensorDesc::new([rows, 1, head_dim], DataType::U8), "q_q");
    let k = g.add_input(
        TensorDesc::new([rows, cap, head_dim], DataType::I8),
        "k_cache",
    );
    let v = g.add_input(
        TensorDesc::new([rows, cap, head_dim], DataType::I8),
        "v_cache",
    );
    let mask = g.add_input(TensorDesc::new([rows, 1, cap], DataType::F32), "mask");
    let scale = g.add_constant(Tensor::scalar_f32((head_dim as f32).sqrt()), "sqrt_d");

    let q_f = g.add_op(OpKind::Dequantize { params: a_q }, &[q]).unwrap();
    let k_f = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(w_s),
            },
            &[k],
        )
        .unwrap();
    let kt = g.add_op(OpKind::Transpose, &[k_f]).unwrap();
    let scores = g.add_op(OpKind::MatMul, &[q_f, kt]).unwrap();
    let scaled = g
        .add_op(OpKind::Binary(BinaryKind::Div), &[scores, scale])
        .unwrap();
    let masked = g
        .add_op(OpKind::Binary(BinaryKind::Add), &[scaled, mask])
        .unwrap();
    let probs = g.add_op(OpKind::Softmax, &[masked]).unwrap();
    let probs_q = g
        .add_op(
            OpKind::Quantize {
                dtype: DataType::U8,
                params: p_q,
            },
            &[probs],
        )
        .unwrap();
    let p_f = g
        .add_op(OpKind::Dequantize { params: p_q }, &[probs_q])
        .unwrap();
    let v_f = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(w_s),
            },
            &[v],
        )
        .unwrap();
    let out = g.add_op(OpKind::MatMul, &[p_f, v_f]).unwrap();
    g.mark_output(out);
    g
}

/// Random input tensors matching a graph's inputs (deterministic).
pub fn random_inputs(g: &Graph, seed: u64) -> Vec<Tensor> {
    g.inputs()
        .iter()
        .enumerate()
        .map(|(i, &lt)| {
            let d = g.desc(lt);
            Tensor::random(d.shape(), d.dtype(), seed + i as u64)
        })
        .collect()
}

/// Identify a single matmul problem: returns (name, m, n, k) rows for
/// every individual layer of both MLP workloads at every batch size —
/// the Figure 7 test set.
pub fn fig7_problems() -> Vec<(String, usize, usize, usize)> {
    let mut out = Vec::new();
    for batch in mlp_batch_sizes() {
        for (wl, layers) in [("MLP_1", mlp1_layers()), ("MLP_2", mlp2_layers())] {
            for w in layers.windows(2) {
                out.push((
                    format!("{wl} b{batch} {}x{}x{}", batch, w[1], w[0]),
                    batch,
                    w[1],
                    w[0],
                ));
            }
        }
    }
    out
}

/// A single-matmul graph for Figure 7 (optionally int8).
pub fn single_matmul(m: usize, n: usize, k: usize, precision: Precision, seed: u64) -> Graph {
    match precision {
        Precision::F32 => {
            let mut g = Graph::new();
            let x = g.add_input(TensorDesc::new([m, k], DataType::F32), "x");
            let w = g.add_constant(Tensor::random(&[k, n], DataType::F32, seed), "w");
            let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
            g.mark_output(y);
            g
        }
        Precision::Int8 => {
            let (a_q, w_s, out_q) = default_qparams();
            let mut g = Graph::new();
            let x = g.add_input(TensorDesc::new([m, k], DataType::U8), "x_q");
            let w = g.add_constant(Tensor::random(&[k, n], DataType::I8, seed), "w_q");
            let a_f = g.add_op(OpKind::Dequantize { params: a_q }, &[x]).unwrap();
            let w_f = g
                .add_op(
                    OpKind::Dequantize {
                        params: QuantParams::symmetric(w_s),
                    },
                    &[w],
                )
                .unwrap();
            let mm = g.add_op(OpKind::MatMul, &[a_f, w_f]).unwrap();
            let q = g
                .add_op(
                    OpKind::Quantize {
                        dtype: DataType::U8,
                        params: out_q,
                    },
                    &[mm],
                )
                .unwrap();
            g.mark_output(q);
            g
        }
    }
}

/// Reference (oracle) evaluation of any graph built by this module,
/// using the naive implementations. Slow; for correctness tests.
pub fn reference_eval(g: &Graph, inputs: &[Tensor]) -> Vec<Tensor> {
    use gc_tensor::reference as r;
    let mut values: std::collections::HashMap<LtId, Tensor> = std::collections::HashMap::new();
    for (i, &lt) in g.inputs().iter().enumerate() {
        values.insert(lt, inputs[i].clone());
    }
    // constants
    for id in g.live_ops() {
        for &inp in &g.op(id).inputs {
            if let Some(v) = g.const_value(inp) {
                values.insert(inp, v.clone());
            }
        }
    }
    let order = g.topo_order().expect("acyclic");
    for id in order {
        let op = g.op(id).clone();
        let ins: Vec<Tensor> = op.inputs.iter().map(|i| values[i].clone()).collect();
        let out = match &op.kind {
            OpKind::MatMul => r::matmul_f32(&ins[0], &ins[1]).unwrap(),
            OpKind::QuantizedMatMul { .. } => panic!("reference eval runs pre-conversion graphs"),
            OpKind::Unary(UnaryKind::Relu) => r::relu(&ins[0]).unwrap(),
            OpKind::Unary(UnaryKind::Gelu) => r::gelu(&ins[0]).unwrap(),
            OpKind::Unary(UnaryKind::Sigmoid) => r::sigmoid(&ins[0]).unwrap(),
            OpKind::Unary(UnaryKind::Tanh) => r::tanh(&ins[0]).unwrap(),
            OpKind::Unary(UnaryKind::Exp) => r::exp(&ins[0]).unwrap(),
            OpKind::Unary(UnaryKind::Square) => {
                r::binary(r::BinaryKind::Mul, &ins[0], &ins[0]).unwrap()
            }
            OpKind::Unary(UnaryKind::Neg) => {
                let v: Vec<f32> = ins[0].f32_slice().unwrap().iter().map(|x| -x).collect();
                Tensor::from_vec_f32(ins[0].desc().shape(), v).unwrap()
            }
            OpKind::Unary(UnaryKind::Identity) => ins[0].clone(),
            OpKind::Binary(bk) => {
                let k = match bk {
                    BinaryKind::Add => r::BinaryKind::Add,
                    BinaryKind::Sub => r::BinaryKind::Sub,
                    BinaryKind::Mul => r::BinaryKind::Mul,
                    BinaryKind::Div => r::BinaryKind::Div,
                    BinaryKind::Max => r::BinaryKind::Max,
                    BinaryKind::Min => r::BinaryKind::Min,
                };
                // rank-0 rhs: scalar broadcast
                if ins[1].desc().rank() == 0 {
                    let s = ins[1].f32_slice().unwrap()[0];
                    let v: Vec<f32> = ins[0]
                        .f32_slice()
                        .unwrap()
                        .iter()
                        .map(|&x| match k {
                            r::BinaryKind::Add => x + s,
                            r::BinaryKind::Sub => x - s,
                            r::BinaryKind::Mul => x * s,
                            r::BinaryKind::Div => x / s,
                            r::BinaryKind::Max => x.max(s),
                            r::BinaryKind::Min => x.min(s),
                        })
                        .collect();
                    Tensor::from_vec_f32(ins[0].desc().shape(), v).unwrap()
                } else {
                    r::binary(k, &ins[0], &ins[1]).unwrap()
                }
            }
            OpKind::Reduce(gc_graph::ReduceKind::Sum) => {
                r::reduce_last_axis(r::ReduceKind::Sum, &ins[0]).unwrap()
            }
            OpKind::Reduce(gc_graph::ReduceKind::Max) => {
                r::reduce_last_axis(r::ReduceKind::Max, &ins[0]).unwrap()
            }
            OpKind::Softmax => r::softmax_last_axis(&ins[0]).unwrap(),
            OpKind::Transpose => gc_tensor::reorder::transpose_last2(&ins[0]).unwrap(),
            OpKind::Quantize { dtype, params } => r::quantize(&ins[0], *dtype, *params).unwrap(),
            OpKind::Dequantize { params } => r::dequantize(&ins[0], *params).unwrap(),
            OpKind::Reorder { target } => {
                gc_tensor::reorder::reorder(&ins[0], target.clone()).unwrap()
            }
            OpKind::BiasAdd => r::bias_add(&ins[0], &ins[1]).unwrap(),
            OpKind::KvAppend => {
                // Exactly the decomposition's arithmetic:
                // cache - (cache - row) * onehot.
                let diff = r::binary(r::BinaryKind::Sub, &ins[0], &ins[1]).unwrap();
                let corr = r::binary(r::BinaryKind::Mul, &diff, &ins[2]).unwrap();
                r::binary(r::BinaryKind::Sub, &ins[0], &corr).unwrap()
            }
            OpKind::DecodeAttention => {
                let head_dim = *ins[0].desc().shape().last().unwrap() as f32;
                let kt = gc_tensor::reorder::transpose_last2(&ins[1]).unwrap();
                let scores = r::matmul_f32(&ins[0], &kt).unwrap();
                let s = head_dim.sqrt();
                let scaled = Tensor::from_vec_f32(
                    scores.desc().shape(),
                    scores.f32_slice().unwrap().iter().map(|&x| x / s).collect(),
                )
                .unwrap();
                let masked = r::binary(r::BinaryKind::Add, &scaled, &ins[3]).unwrap();
                let probs = r::softmax_last_axis(&masked).unwrap();
                r::matmul_f32(&probs, &ins[2]).unwrap()
            }
            other => panic!("reference eval: unsupported {other}"),
        };
        values.insert(op.outputs[0], out);
    }
    g.outputs().iter().map(|o| values[o].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(mlp1_layers(), vec![13, 512, 256, 128]);
        assert_eq!(mlp2_layers().len(), 6);
        assert_eq!(mha_configs().len(), 4);
        assert_eq!(fig7_problems().len(), 5 * (3 + 5));
    }

    #[test]
    fn mlp_graph_builds_and_validates() {
        let g = mlp_f32(32, &mlp1_layers(), 0);
        g.validate().unwrap();
        assert_eq!(g.live_ops().count(), 3 + 2); // 3 matmuls + 2 relus
        let out = g.outputs()[0];
        assert_eq!(g.desc(out).shape(), &[32, 128]);
    }

    #[test]
    fn mlp_int8_graph_builds() {
        let g = mlp_int8(32, &mlp1_layers(), 0);
        g.validate().unwrap();
        let out = g.outputs()[0];
        assert_eq!(g.desc(out).dtype(), DataType::U8);
    }

    #[test]
    fn mha_graph_builds() {
        let (g, d) = mha_f32(2, &mha_configs()[0]);
        g.validate().unwrap();
        assert_eq!(d, 96);
        let out = g.outputs()[0];
        assert_eq!(g.desc(out).shape(), &[16, 128, 96]);
    }

    #[test]
    fn reference_eval_softmax_consistency() {
        let (g, _) = mha_f32(
            1,
            &MhaConfig {
                name: "t",
                seq: 8,
                hidden: 32,
                heads: 4,
            },
        );
        let inputs = random_inputs(&g, 3);
        let outs = reference_eval(&g, &inputs);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].desc().shape(), &[4, 8, 8]);
    }

    #[test]
    fn random_inputs_match_descs() {
        let g = mlp_int8(16, &[13, 32], 0);
        let ins = random_inputs(&g, 0);
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].desc().dtype(), DataType::U8);
    }
}
