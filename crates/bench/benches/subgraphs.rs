//! Criterion benchmarks backing Figure 8: MLP_1 and a small MHA
//! subgraph across the three settings (baseline / no-coarse / full),
//! measured as host wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_baseline::{Baseline, BaselineOptions};
use gc_bench::workloads::{self, random_inputs};
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;
use gc_tensor::Tensor;

enum Exe {
    C(gc_core::CompiledPartition),
    B(gc_baseline::BaselineExecutable),
}

impl Exe {
    fn run(&self, inputs: &[Tensor]) {
        match self {
            Exe::C(c) => {
                c.execute(inputs).expect("exec");
            }
            Exe::B(b) => {
                b.execute(inputs).expect("exec");
            }
        }
    }
}

fn settings(machine: &MachineDescriptor) -> Vec<(&'static str, Option<CompileOptions>)> {
    vec![
        ("baseline", None),
        (
            "no-coarse",
            Some(CompileOptions::without_coarse_fusion(machine.clone())),
        ),
        ("full", Some(CompileOptions::new(machine.clone()))),
    ]
}

fn bench_subgraphs(c: &mut Criterion) {
    let machine = MachineDescriptor::xeon_8358();
    let mut group = c.benchmark_group("fig8_subgraphs");
    group.sample_size(10);

    // MLP_1, batch 128, f32 and int8
    for int8 in [false, true] {
        let build = || {
            if int8 {
                workloads::mlp_int8(128, &workloads::mlp1_layers(), 1)
            } else {
                workloads::mlp_f32(128, &workloads::mlp1_layers(), 1)
            }
        };
        let inputs = random_inputs(&build(), 3);
        let label = if int8 {
            "MLP_1-b128-int8"
        } else {
            "MLP_1-b128-fp32"
        };
        for (name, opts) in settings(&machine) {
            let exe = match opts {
                None => Exe::B(
                    Baseline::new(BaselineOptions::new(machine.clone()))
                        .build(build())
                        .expect("build"),
                ),
                Some(o) => Exe::C(Compiler::new(o).compile(build()).expect("compile")),
            };
            exe.run(&inputs);
            group.bench_with_input(BenchmarkId::new(name, label), &inputs, |b, inputs| {
                b.iter(|| exe.run(inputs))
            });
        }
    }

    // small MHA (seq 64, hidden 128, 4 heads, batch 8)
    let cfg = workloads::MhaConfig {
        name: "MHA-small",
        seq: 64,
        hidden: 128,
        heads: 4,
    };
    let build = || workloads::mha_f32(8, &cfg).0;
    let inputs = random_inputs(&build(), 5);
    for (name, opts) in settings(&machine) {
        let exe = match opts {
            None => Exe::B(
                Baseline::new(BaselineOptions::new(machine.clone()))
                    .build(build())
                    .expect("build"),
            ),
            Some(o) => Exe::C(Compiler::new(o).compile(build()).expect("compile")),
        };
        exe.run(&inputs);
        group.bench_with_input(
            BenchmarkId::new(name, "MHA-small-b8-fp32"),
            &inputs,
            |b, inputs| b.iter(|| exe.run(inputs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_subgraphs);
criterion_main!(benches);
