//! Criterion micro-benchmarks backing Figure 7: individual matmul
//! executions (wall time on the host), compiler vs primitives baseline,
//! on a representative subset of the MLP layer shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_baseline::{Baseline, BaselineOptions};
use gc_bench::workloads::{self, random_inputs, Precision};
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;

fn bench_matmuls(c: &mut Criterion) {
    let machine = MachineDescriptor::xeon_8358();
    let mut group = c.benchmark_group("fig7_matmul");
    group.sample_size(10);
    for &(m, n, k) in &[
        (128usize, 512usize, 13usize),
        (128, 256, 512),
        (128, 1024, 479),
    ] {
        for precision in [Precision::F32, Precision::Int8] {
            let label = format!("{m}x{n}x{k}-{precision}");
            let g = workloads::single_matmul(m, n, k, precision, 1);
            let inputs = random_inputs(&g, 2);
            let compiled = Compiler::new(CompileOptions::new(machine.clone()))
                .compile(g)
                .expect("compile");
            let _ = compiled.execute(&inputs).expect("warm");
            group.bench_with_input(
                BenchmarkId::new("compiler", &label),
                &inputs,
                |b, inputs| b.iter(|| compiled.execute(inputs).expect("exec")),
            );
            let g = workloads::single_matmul(m, n, k, precision, 1);
            let baseline = Baseline::new(BaselineOptions::new(machine.clone()))
                .build(g)
                .expect("build");
            let _ = baseline.execute(&inputs).expect("warm");
            group.bench_with_input(
                BenchmarkId::new("primitive", &label),
                &inputs,
                |b, inputs| b.iter(|| baseline.execute(inputs).expect("exec")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matmuls);
criterion_main!(benches);
