//! Compiled execution plans vs the tree-walking interpreter on the
//! Table-1 MLP workloads (f32 and int8), single- and multi-threaded.
//! This is the benchmark backing the plan layer's reason to exist: the
//! steady-state speedup from killing per-iteration interpretation
//! overhead (offset re-evaluation, brgemm table rebuilds, bounds
//! checks, per-iteration variable cloning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_bench::workloads::{self, random_inputs};
use gc_core::{CompileOptions, Compiler};
use gc_graph::Graph;
use gc_machine::MachineDescriptor;

fn compile(graph: Graph, threads: usize, interpret: bool) -> gc_core::CompiledPartition {
    let mut opts = CompileOptions::new(MachineDescriptor::xeon_8358());
    opts.threads = Some(threads);
    opts.interpret = interpret;
    Compiler::new(opts).compile(graph).expect("compile")
}

fn bench_plan_vs_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_vs_interp");
    group.sample_size(10);

    type Case = (&'static str, Box<dyn Fn() -> Graph>);
    let cases: Vec<Case> = vec![
        // latency regime: tiny tiles, interpretation overhead dominates
        (
            "MLP_1-b1-fp32",
            Box::new(|| workloads::mlp_f32(1, &workloads::mlp1_layers(), 1)),
        ),
        (
            "MLP_1-b4-fp32",
            Box::new(|| workloads::mlp_f32(4, &workloads::mlp1_layers(), 1)),
        ),
        (
            "MLP_1-b4-int8",
            Box::new(|| workloads::mlp_int8(4, &workloads::mlp1_layers(), 1)),
        ),
        // throughput regime: compute-bound, plans should at least not hurt
        (
            "MLP_1-b32-fp32",
            Box::new(|| workloads::mlp_f32(32, &workloads::mlp1_layers(), 1)),
        ),
        (
            "MLP_1-b128-fp32",
            Box::new(|| workloads::mlp_f32(128, &workloads::mlp1_layers(), 1)),
        ),
        (
            "MLP_1-b128-int8",
            Box::new(|| workloads::mlp_int8(128, &workloads::mlp1_layers(), 1)),
        ),
        (
            "MLP_2-b32-fp32",
            Box::new(|| workloads::mlp_f32(32, &workloads::mlp2_layers(), 1)),
        ),
    ];

    for (label, build) in &cases {
        let inputs = random_inputs(&build(), 3);
        for threads in [1usize, 4] {
            for (mode, interpret) in [("plan", false), ("interp", true)] {
                let exe = compile(build(), threads, interpret);
                exe.execute(&inputs).expect("warm-up"); // run init stage once
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}-t{threads}"), mode),
                    &exe,
                    |b, exe| {
                        b.iter(|| exe.execute(&inputs).expect("exec"));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_plan_vs_interp);
criterion_main!(benches);
