//! Slab arena backing the temporary buffers of a compiled partition.
//!
//! The Tensor IR memory-buffer optimization computes, at compile time,
//! the peak temporary footprint and an offset for every buffer; the
//! arena is the runtime realization: one allocation, reused across
//! executions.

/// A planned slab allocator: offsets are assigned up front, memory is
/// one contiguous block.
#[derive(Debug)]
pub struct Arena {
    bytes: Vec<u8>,
}

/// Builds the offset plan for an [`Arena`].
#[derive(Debug, Default)]
pub struct ArenaPlanner {
    cursor: usize,
    peak: usize,
    /// (offset, size) of each planned allocation, by handle order.
    slots: Vec<(usize, usize)>,
    free: Vec<(usize, usize)>,
}

/// Handle to a planned arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub usize);

const ALIGN: usize = 64;

fn align_up(x: usize) -> usize {
    (x + ALIGN - 1) & !(ALIGN - 1)
}

impl ArenaPlanner {
    /// A fresh planner.
    pub fn new() -> Self {
        ArenaPlanner::default()
    }

    /// Reserve `size` bytes; reuses a freed slot when one fits
    /// (most-recently-freed first, which keeps reused memory hot in
    /// cache, per the paper's buffer-reuse policy).
    pub fn alloc(&mut self, size: usize) -> SlotId {
        let size = align_up(size.max(1));
        // most recently freed first
        if let Some(pos) = self.free.iter().rposition(|&(_, s)| s >= size) {
            let (off, s) = self.free.remove(pos);
            let id = SlotId(self.slots.len());
            self.slots.push((off, size));
            // return the tail of an oversized slot to the free list
            if s > size {
                self.free.push((off + size, s - size));
            }
            return id;
        }
        let off = self.cursor;
        self.cursor += size;
        self.peak = self.peak.max(self.cursor);
        let id = SlotId(self.slots.len());
        self.slots.push((off, size));
        id
    }

    /// Mark a slot as dead; its bytes become reusable.
    pub fn release(&mut self, id: SlotId) {
        let (off, size) = self.slots[id.0];
        self.free.push((off, size));
    }

    /// Peak bytes the arena must provide.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Byte offset of a slot.
    pub fn offset(&self, id: SlotId) -> usize {
        self.slots[id.0].0
    }

    /// Materialize the arena.
    pub fn build(&self) -> Arena {
        Arena {
            bytes: vec![0u8; self.peak],
        }
    }
}

impl Arena {
    /// Total bytes held.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// View a slot's bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena.
    pub fn bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.bytes[offset..offset + len]
    }

    /// Mutable view of a slot's bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the arena.
    pub fn bytes_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        &mut self.bytes[offset..offset + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocs_advance_cursor() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(100);
        let b = p.alloc(100);
        assert_eq!(p.offset(a), 0);
        assert_eq!(p.offset(b), 128); // aligned to 64
        assert_eq!(p.peak_bytes(), 256);
    }

    #[test]
    fn released_slot_is_reused() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(256);
        p.release(a);
        let b = p.alloc(256);
        assert_eq!(p.offset(a), p.offset(b));
        assert_eq!(p.peak_bytes(), 256);
    }

    #[test]
    fn most_recently_freed_wins() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(64);
        let b = p.alloc(64);
        p.release(a);
        p.release(b);
        let c = p.alloc(64);
        assert_eq!(p.offset(c), p.offset(b), "hot slot reused first");
    }

    #[test]
    fn oversized_slot_splits() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(256);
        p.release(a);
        let b = p.alloc(64);
        let c = p.alloc(128);
        assert_eq!(p.offset(b), 0);
        assert_eq!(p.offset(c), 64);
        assert_eq!(p.peak_bytes(), 256);
    }

    #[test]
    fn arena_views_are_disjoint() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(64);
        let b = p.alloc(64);
        let mut arena = p.build();
        arena.bytes_mut(p.offset(a), 64).fill(1);
        arena.bytes_mut(p.offset(b), 64).fill(2);
        assert!(arena.bytes(p.offset(a), 64).iter().all(|&x| x == 1));
        assert!(arena.bytes(p.offset(b), 64).iter().all(|&x| x == 2));
        assert_eq!(arena.capacity(), 128);
    }

    #[test]
    fn zero_size_allocation_is_padded() {
        let mut p = ArenaPlanner::new();
        let a = p.alloc(0);
        assert_eq!(p.offset(a), 0);
        assert_eq!(p.peak_bytes(), 64);
    }
}
