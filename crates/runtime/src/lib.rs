//! Execution-runtime substrate for the oneDNN Graph Compiler
//! reproduction.
//!
//! Compiled partitions need three runtime services, all provided here:
//!
//! - [`ThreadPool`] — persistent workers executing lowered parallel
//!   loops, with an implicit barrier per loop (the synchronization that
//!   coarse-grain fusion removes);
//! - [`Arena`] / [`ArenaPlanner`] — the slab allocator realizing the
//!   Tensor IR memory-buffer plan (offsets assigned at compile time,
//!   one allocation reused across runs);
//! - [`ConstantCache`] — the first-execution cache behind constant
//!   weight preprocessing ("processed once, reused forever");
//! - [`ExecStats`] — counters surfaced to the benchmark harness.
//!
//! Pools are plain values: an engine instance owns its own
//! [`ThreadPool`], and several pools coexist in one process (that is
//! what gc-serve's engine shards are — see DESIGN.md "Sharded
//! execution"). [`ThreadPool::with_worker_setup`] lets a shard
//! configure its workers at spawn (per-thread kernel backend, affinity
//! via [`affinity::pin_current_thread`]).

#![warn(missing_docs)]

pub mod affinity;
mod arena;
mod constant_cache;
mod pool;
mod stats;

pub use arena::{Arena, ArenaPlanner, SlotId};
pub use constant_cache::ConstantCache;
pub use pool::{ThreadPool, WorkerSetup};
pub use stats::ExecStats;
