//! Best-effort CPU affinity for engine-shard threads.
//!
//! Engine shards (gc-serve, DESIGN.md "Sharded execution") can pin
//! their pool to a contiguous core range so two shards stop migrating
//! onto each other's cores. This reproduction carries **zero external
//! dependencies**, so instead of `libc::sched_setaffinity` the Linux
//! syscall is issued directly with inline assembly on x86_64/aarch64;
//! everywhere else (or when the kernel refuses — cgroup cpusets,
//! restricted sandboxes) pinning quietly degrades to a no-op and
//! [`pin_current_thread`] reports `false`. Affinity is a *hint* for
//! locality, never a correctness requirement — every test and bench
//! must pass identically with pinning unavailable.

/// Maximum core index representable in the fixed-size affinity mask
/// (1024 cores, matching the kernel's default `CPU_SETSIZE`).
pub const MAX_PINNABLE_CORE: usize = 1023;

/// Pin the calling thread to the given CPU cores. Returns `true` only
/// if the kernel accepted the mask; `false` means the request was
/// ignored (empty/out-of-range list, unsupported platform, or the
/// kernel rejected it) and the thread keeps its previous affinity.
///
/// Best-effort by design: shard setup treats `false` as "run unpinned",
/// not an error.
pub fn pin_current_thread(cores: &[usize]) -> bool {
    if cores.is_empty() || cores.iter().any(|&c| c > MAX_PINNABLE_CORE) {
        return false;
    }
    let mut mask = [0u64; (MAX_PINNABLE_CORE + 1) / 64];
    for &core in cores {
        mask[core / 64] |= 1u64 << (core % 64);
    }
    sched_setaffinity_current(&mask)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn sched_setaffinity_current(mask: &[u64; 16]) -> bool {
    // sched_setaffinity(pid = 0 /* current thread */, len, mask).
    let len = std::mem::size_of_val(mask);
    let ptr = mask.as_ptr();
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    // SAFETY: syscall 203 (sched_setaffinity) reads `len` bytes from
    // `ptr`, which points at a live 128-byte array; no Rust state is
    // touched. rcx/r11 are clobbered by the syscall instruction itself.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") ptr,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: syscall 122 (sched_setaffinity) reads `len` bytes from
    // `ptr`, which points at a live 128-byte array; no Rust state is
    // touched.
    unsafe {
        std::arch::asm!(
            "svc 0",
            inlateout("x8") 122isize => _,
            inlateout("x0") 0usize => ret,
            in("x1") len,
            in("x2") ptr,
            options(nostack)
        );
    }
    ret == 0
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_current(_mask: &[u64; 16]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_out_of_range_are_rejected_locally() {
        assert!(!pin_current_thread(&[]));
        assert!(!pin_current_thread(&[MAX_PINNABLE_CORE + 1]));
    }

    #[test]
    fn pinning_to_core_zero_is_best_effort() {
        // Core 0 always exists; the kernel may still refuse (cpuset
        // restrictions), so only assert we don't crash and that a
        // subsequent unrestricted mask also doesn't crash.
        let _ = pin_current_thread(&[0]);
        let all: Vec<usize> = (0..std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1))
            .collect();
        let _ = pin_current_thread(&all);
    }

    #[test]
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn linux_accepts_full_online_mask() {
        // Pinning to every online core is a no-op affinity-wise and the
        // kernel accepts it, giving the syscall path real coverage.
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let all: Vec<usize> = (0..n).collect();
        assert!(pin_current_thread(&all));
    }
}
