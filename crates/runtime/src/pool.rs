//! A persistent thread pool executing the parallel loops of compiled
//! code.
//!
//! Each lowered parallel loop becomes one `parallel_for` call; the pool
//! is created once per engine, mirroring the OpenMP-style runtime the
//! original system relies on. Every `parallel_for` ends with an implicit
//! barrier — the synchronization the paper's coarse-grain fusion
//! eliminates by merging loops.
//!
//! Scheduling hands out *contiguous index chunks* of a configurable
//! grain, claimed from a shared atomic cursor. Workers are long-lived:
//! a parallel region publishes one task and wakes them; nothing is
//! spawned per call. The caller participates in the loop itself, so a
//! pool of `t` threads keeps `t` cores busy (`t - 1` workers + caller)
//! and nested `parallel_for` calls degrade to serial execution on the
//! nested caller instead of deadlocking.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Job type accepted by [`ThreadPool::parallel_for_static`].
pub type Job = Arc<dyn Fn(usize) + Send + Sync>;

/// One published parallel region: a chunk-claiming cursor over `0..n`
/// plus a completion counter.
struct Task {
    /// Chunk body, lifetime-erased. Only dereferenced for claims with
    /// `start < n`, and the publishing caller blocks until `pending`
    /// hits zero, so the pointee outlives every dereference.
    job: *const (dyn Fn(usize, usize) + Sync),
    n: usize,
    grain: usize,
    /// Next unclaimed index.
    cursor: AtomicUsize,
    /// Iterations not yet completed.
    pending: AtomicUsize,
}

// SAFETY: `job` is only ever dereferenced while the publishing caller
// keeps the closure alive (see `Task::job`); the raw pointer itself is
// freely sendable.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claim and run chunks until the cursor is exhausted. Returns the
    /// number of chunks executed.
    fn work(&self) -> u64 {
        let mut chunks = 0u64;
        loop {
            let start = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
            if start >= self.n {
                return chunks;
            }
            let end = (start + self.grain).min(self.n);
            // SAFETY: start < n, so the caller is still blocked in
            // `run_task` waiting for these iterations.
            unsafe { (*self.job)(start, end) };
            chunks += 1;
            self.pending.fetch_sub(end - start, Ordering::Release);
        }
    }
}

#[derive(Default)]
struct Slot {
    /// Monotonic region counter; bumped when a new task is published.
    epoch: u64,
    task: Option<Arc<Task>>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    wake: Condvar,
}

/// A fixed-size pool of worker threads.
///
/// # Examples
///
/// ```
/// use gc_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let sum = AtomicUsize::new(0);
/// pool.parallel_for(100, |i| { sum.fetch_add(i, Ordering::Relaxed); });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    barriers: AtomicU64,
    chunks: AtomicU64,
}

/// Per-worker setup hook run once on each worker thread before it
/// enters its claim loop. Receives the worker's index in `1..threads`
/// (index 0 is the participating caller, which the pool does not own —
/// callers needing symmetric setup run the hook themselves).
pub type WorkerSetup = Arc<dyn Fn(usize) + Send + Sync>;

impl ThreadPool {
    /// Build a pool that keeps `threads` cores busy (minimum 1): the
    /// caller of a parallel region counts as one, so `threads - 1`
    /// workers are spawned.
    pub fn new(threads: usize) -> Self {
        Self::build(threads, None)
    }

    /// Like [`ThreadPool::new`], but runs `setup(worker_index)` once on
    /// every spawned worker thread before it starts claiming chunks.
    ///
    /// This is how engine shards configure their pools: the hook pins
    /// the worker to the shard's core range and installs the shard's
    /// per-thread kernel backend, so every thread that executes kernels
    /// for the shard — workers here, the executor thread by running the
    /// same hook itself — is set up identically (DESIGN.md "Sharded
    /// execution").
    pub fn with_worker_setup(threads: usize, setup: WorkerSetup) -> Self {
        Self::build(threads, Some(setup))
    }

    fn build(threads: usize, setup: Option<WorkerSetup>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot::default()),
            wake: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let setup = setup.clone();
                std::thread::Builder::new()
                    .name(format!("gc-worker-{w}"))
                    .spawn(move || {
                        if let Some(setup) = setup {
                            setup(w);
                        }
                        worker_loop(&shared)
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
            barriers: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        }
    }

    /// Pool sized to the host's available parallelism.
    pub fn with_host_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    }

    /// Number of cores this pool keeps busy (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `body(start, end)` over contiguous chunks of `0..n`, each at
    /// most `grain` long. Blocks until all indices complete (implicit
    /// barrier). Chunks are claimed dynamically, so uneven chunk costs
    /// still balance.
    ///
    /// With one thread (or `n <= grain`) the body runs inline on the
    /// caller with no allocation or synchronization beyond counters.
    pub fn parallel_for_grained<F>(&self, n: usize, grain: usize, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        self.barriers.fetch_add(1, Ordering::Relaxed);
        if self.workers.is_empty() || n <= grain {
            body(0, n);
            self.chunks.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: erases the borrow lifetime of `body`. The pointer is
        // only dereferenced for claims made before the cursor passes `n`,
        // and this frame blocks below until every such claim completed.
        let job: *const (dyn Fn(usize, usize) + Sync) =
            unsafe { std::mem::transmute(&body as &(dyn Fn(usize, usize) + Sync)) };
        let task = Arc::new(Task {
            job,
            n,
            grain,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(n),
        });
        {
            let mut slot = self.shared.slot.lock().expect("pool poisoned");
            slot.epoch += 1;
            slot.task = Some(Arc::clone(&task));
        }
        self.shared.wake.notify_all();
        // Participate, then wait out stragglers still in their last chunk.
        task.work();
        let mut spins = 0u32;
        while task.pending.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Retire the task so idle workers stop holding it alive.
        {
            let mut slot = self.shared.slot.lock().expect("pool poisoned");
            if slot.task.as_ref().is_some_and(|t| Arc::ptr_eq(t, &task)) {
                slot.task = None;
            }
        }
        // Claims tile 0..n exactly, so the region dispatched ceil(n/grain)
        // chunks regardless of which thread ran each one.
        self.chunks
            .fetch_add(n.div_ceil(grain) as u64, Ordering::Relaxed);
    }

    /// Run `body(i)` for every `i in 0..n` with an automatically chosen
    /// grain (a few chunks per thread). Blocks until all indices
    /// complete (implicit barrier).
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let grain = self.default_grain(n);
        self.parallel_for_grained(n, grain, |start, end| {
            for i in start..end {
                body(i);
            }
        });
    }

    /// The grain `parallel_for` would pick for an `n`-iteration loop:
    /// roughly four chunks per thread so dynamic claiming can balance
    /// uneven iteration costs without shrinking chunks to single
    /// indices.
    pub fn default_grain(&self, n: usize) -> usize {
        n.div_ceil(self.threads * 4).max(1)
    }

    /// Total `parallel_for` barriers executed so far — the
    /// synchronization count that coarse-grain fusion reduces.
    pub fn barrier_count(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }

    /// Total contiguous chunks dispatched across all parallel regions.
    pub fn chunk_count(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Chunked job over `0..n` for `'static` closures behind an `Arc`.
    ///
    /// Same scheduling as [`ThreadPool::parallel_for`]; kept for callers
    /// that hold the job in shared ownership.
    pub fn parallel_for_static(&self, n: usize, job: Job) {
        self.parallel_for(n, move |i| job(i));
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut slot = shared.slot.lock().expect("pool poisoned");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    if let Some(t) = slot.task.clone() {
                        break t;
                    }
                }
                slot = shared.wake.wait(slot).expect("pool poisoned");
            }
        };
        task.work();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool poisoned");
            slot.shutdown = true;
        }
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn covers_all_indices_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_iterations_no_barrier_hang() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0, |_| panic!("must not run"));
        assert_eq!(pool.barrier_count(), 0);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(10, |i| {
            sum.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.into_inner(), 55);
    }

    #[test]
    fn counts_barriers() {
        let pool = ThreadPool::new(2);
        for _ in 0..5 {
            pool.parallel_for(4, |_| {});
        }
        assert_eq!(pool.barrier_count(), 5);
    }

    #[test]
    fn static_path_matches() {
        let pool = ThreadPool::new(3);
        let sum = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&sum);
        pool.parallel_for_static(
            100,
            Arc::new(move |i| {
                s2.fetch_add(i, Ordering::SeqCst);
            }),
        );
        assert_eq!(sum.load(Ordering::SeqCst), 4950);
    }

    #[test]
    fn more_threads_than_work() {
        let pool = ThreadPool::new(8);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(3, |i| {
            sum.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.into_inner(), 6);
    }

    #[test]
    fn grained_chunks_are_contiguous_and_bounded() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(Vec::new());
        pool.parallel_for_grained(103, 10, |start, end| {
            assert!(end - start <= 10);
            seen.lock().unwrap().push((start, end));
        });
        let mut chunks = seen.into_inner().unwrap();
        chunks.sort();
        // Chunks tile 0..103 exactly.
        let mut next = 0;
        for (s, e) in chunks {
            assert_eq!(s, next);
            next = e;
        }
        assert_eq!(next, 103);
    }

    #[test]
    fn grained_serial_when_fits_one_chunk() {
        let pool = ThreadPool::new(4);
        let before = pool.chunk_count();
        let count = AtomicUsize::new(0);
        pool.parallel_for_grained(7, 16, |start, end| {
            assert_eq!((start, end), (0, 7));
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.into_inner(), 1);
        assert_eq!(pool.chunk_count() - before, 1);
    }

    #[test]
    fn reuses_workers_across_many_regions() {
        let pool = ThreadPool::new(4);
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            pool.parallel_for_grained(64, 8, |start, end| {
                sum.fetch_add((start..end).sum::<usize>(), Ordering::Relaxed);
            });
            assert_eq!(sum.into_inner(), 2016, "round {round}");
        }
        assert_eq!(pool.barrier_count(), 200);
    }

    #[test]
    fn worker_setup_runs_once_per_worker() {
        let ran = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&ran);
        let pool = ThreadPool::with_worker_setup(
            4,
            Arc::new(move |w| {
                r2.lock().unwrap().push(w);
            }),
        );
        // Force the workers to have started (setup runs before the
        // claim loop, so completing a region proves all setups ran...
        // only for workers that claimed chunks; join on drop proves the
        // rest, so check after dropping the pool).
        pool.parallel_for(64, |_| {});
        drop(pool);
        let mut ws = Arc::try_unwrap(ran).unwrap().into_inner().unwrap();
        ws.sort();
        assert_eq!(ws, vec![1, 2, 3]);
    }

    #[test]
    fn nested_parallel_for_completes() {
        let pool = Arc::new(ThreadPool::new(4));
        let total = AtomicUsize::new(0);
        let p2 = Arc::clone(&pool);
        pool.parallel_for(4, |_| {
            p2.parallel_for(8, |_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.into_inner(), 32);
    }
}
