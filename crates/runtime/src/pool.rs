//! A persistent thread pool executing the parallel loops of compiled
//! code.
//!
//! Each lowered parallel loop becomes one `parallel_for` call; the pool
//! is created once per engine, mirroring the OpenMP-style runtime the
//! original system relies on. Every `parallel_for` ends with an implicit
//! barrier — the synchronization the paper's coarse-grain fusion
//! eliminates by merging loops.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Arc<dyn Fn(usize) + Send + Sync>;

enum Message {
    Run {
        job: Job,
        start: usize,
        end: usize,
        done: Sender<()>,
    },
    Shutdown,
}

/// A fixed-size pool of worker threads.
///
/// # Examples
///
/// ```
/// use gc_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let sum = AtomicUsize::new(0);
/// pool.parallel_for(100, |i| { sum.fetch_add(i, Ordering::Relaxed); });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub struct ThreadPool {
    sender: Sender<Message>,
    receiver: Receiver<Message>,
    workers: Vec<JoinHandle<()>>,
    barriers: AtomicU64,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Message>();
        let workers = (0..threads)
            .map(|w| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("gc-worker-{w}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender,
            receiver,
            workers,
            barriers: AtomicU64::new(0),
        }
    }

    /// Pool sized to the host's available parallelism.
    pub fn with_host_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run `body(i)` for every `i in 0..n`, splitting the index space
    /// into one contiguous chunk per worker. Blocks until all indices
    /// complete (implicit barrier).
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if n == 0 {
            return;
        }
        self.barriers.fetch_add(1, Ordering::Relaxed);
        // SAFETY-free approach: wrap the borrowed closure in an Arc with
        // a 'static lifetime by scoping: we block until all chunks are
        // done, so the borrow cannot outlive this call. To stay in safe
        // Rust we instead clone the work through an Arc<dyn Fn> built
        // from a scoped channel round-trip.
        crossbeam::scope(|s| {
            let chunks = self.workers.len().min(n);
            let per = n.div_ceil(chunks);
            for c in 0..chunks {
                let start = c * per;
                let end = ((c + 1) * per).min(n);
                if start >= end {
                    continue;
                }
                let body = &body;
                s.spawn(move |_| {
                    for i in start..end {
                        body(i);
                    }
                });
            }
        })
        .expect("parallel_for worker panicked");
    }

    /// Total `parallel_for` barriers executed so far — the
    /// synchronization count that coarse-grain fusion reduces.
    pub fn barrier_count(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }

    /// Submit an asynchronous chunked job over `0..n` using the
    /// persistent workers and wait for completion.
    ///
    /// Unlike [`ThreadPool::parallel_for`] this routes through the
    /// long-lived worker threads (no per-call spawn), at the cost of
    /// requiring a `'static` job.
    pub fn parallel_for_static(&self, n: usize, job: Job) {
        if n == 0 {
            return;
        }
        self.barriers.fetch_add(1, Ordering::Relaxed);
        let chunks = self.workers.len().min(n);
        let per = n.div_ceil(chunks);
        let (done_tx, done_rx) = unbounded();
        let mut sent = 0;
        for c in 0..chunks {
            let start = c * per;
            let end = ((c + 1) * per).min(n);
            if start >= end {
                continue;
            }
            self.sender
                .send(Message::Run {
                    job: Arc::clone(&job),
                    start,
                    end,
                    done: done_tx.clone(),
                })
                .expect("worker channel closed");
            sent += 1;
        }
        for _ in 0..sent {
            done_rx.recv().expect("worker dropped completion");
        }
    }
}

fn worker_loop(rx: &Receiver<Message>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Message::Run {
                job,
                start,
                end,
                done,
            } => {
                for i in start..end {
                    job(i);
                }
                let _ = done.send(());
            }
            Message::Shutdown => break,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.sender.send(Message::Shutdown);
        }
        // Drain our copy of the receiver so shutdown messages are not
        // starved by queued jobs.
        let _ = &self.receiver;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn covers_all_indices_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_iterations_no_barrier_hang() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0, |_| panic!("must not run"));
        assert_eq!(pool.barrier_count(), 0);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(10, |i| {
            sum.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.into_inner(), 55);
    }

    #[test]
    fn counts_barriers() {
        let pool = ThreadPool::new(2);
        for _ in 0..5 {
            pool.parallel_for(4, |_| {});
        }
        assert_eq!(pool.barrier_count(), 5);
    }

    #[test]
    fn static_path_matches() {
        let pool = ThreadPool::new(3);
        let sum = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&sum);
        pool.parallel_for_static(
            100,
            Arc::new(move |i| {
                s2.fetch_add(i, Ordering::SeqCst);
            }),
        );
        assert_eq!(sum.load(Ordering::SeqCst), 4950);
    }

    #[test]
    fn more_threads_than_work() {
        let pool = ThreadPool::new(8);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(3, |i| {
            sum.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.into_inner(), 6);
    }
}
