//! Execution statistics collected by the engine.

use std::time::Duration;

/// Statistics for one compiled-partition execution.
///
/// The last two fields are filled in by serving layers (`gc-serve`)
/// that sit between the caller and the engine: the engine itself
/// leaves them at their defaults for a direct `execute` call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Wall-clock time of the whole execution.
    pub wall: Duration,
    /// Wall-clock time spent in the one-time init stage (zero when the
    /// constant cache was already warm).
    pub init_wall: Duration,
    /// Number of parallel-loop barriers executed.
    pub barriers: u64,
    /// Number of function (fused-op) invocations.
    pub func_calls: u64,
    /// Peak temporary-arena bytes.
    pub peak_temp_bytes: usize,
    /// Time the request spent queued before its batch started executing
    /// (zero for direct, unqueued execution).
    pub queue_wait: Duration,
    /// Rows of the coalesced batch this request was executed in
    /// (zero when the call did not go through a batching layer).
    pub batch_rows: u64,
}

impl ExecStats {
    /// Merge another run's stats into an aggregate (sums; peaks max).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.wall += other.wall;
        self.init_wall += other.init_wall;
        self.barriers += other.barriers;
        self.func_calls += other.func_calls;
        self.peak_temp_bytes = self.peak_temp_bytes.max(other.peak_temp_bytes);
        self.queue_wait += other.queue_wait;
        self.batch_rows = self.batch_rows.max(other.batch_rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_and_maxes() {
        let mut a = ExecStats {
            wall: Duration::from_millis(2),
            init_wall: Duration::from_millis(1),
            barriers: 3,
            func_calls: 2,
            peak_temp_bytes: 100,
            queue_wait: Duration::from_millis(1),
            batch_rows: 4,
        };
        let b = ExecStats {
            wall: Duration::from_millis(5),
            init_wall: Duration::ZERO,
            barriers: 1,
            func_calls: 4,
            peak_temp_bytes: 50,
            queue_wait: Duration::from_millis(2),
            batch_rows: 2,
        };
        a.accumulate(&b);
        assert_eq!(a.wall, Duration::from_millis(7));
        assert_eq!(a.barriers, 4);
        assert_eq!(a.func_calls, 6);
        assert_eq!(a.peak_temp_bytes, 100);
        assert_eq!(a.queue_wait, Duration::from_millis(3));
        assert_eq!(a.batch_rows, 4);
    }
}
