//! One-time initialization cache for runtime constants.
//!
//! "These runtime constants only be executed once in the first
//! execution, and all future execution will reuse the processed result."
//! A compiled partition's init function runs through this cache: the
//! first caller computes the processed weights, everyone else reuses
//! them.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A keyed once-cache: `get_or_init` computes a value on first use and
/// returns the shared result thereafter.
#[derive(Debug)]
pub struct ConstantCache<V> {
    map: Mutex<HashMap<u64, Arc<V>>>,
    computes: Mutex<u64>,
}

impl<V> Default for ConstantCache<V> {
    fn default() -> Self {
        ConstantCache {
            map: Mutex::new(HashMap::new()),
            computes: Mutex::new(0),
        }
    }
}

impl<V> ConstantCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        ConstantCache::default()
    }

    /// Return the cached value for `key`, computing it with `init` on
    /// first use.
    pub fn get_or_init(&self, key: u64, init: impl FnOnce() -> V) -> Arc<V> {
        // Fast path.
        if let Some(v) = self.map.lock().unwrap().get(&key) {
            return Arc::clone(v);
        }
        // Compute outside the map lock would allow duplicate inits;
        // partitions are few and inits heavy, so hold the lock.
        let mut map = self.map.lock().unwrap();
        if let Some(v) = map.get(&key) {
            return Arc::clone(v);
        }
        let v = Arc::new(init());
        *self.computes.lock().unwrap() += 1;
        map.insert(key, Arc::clone(&v));
        v
    }

    /// How many initializations actually ran (for tests and stats).
    pub fn compute_count(&self) -> u64 {
        *self.computes.lock().unwrap()
    }

    /// Drop everything (weights changed / tests).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_once() {
        let cache = ConstantCache::<Vec<u8>>::new();
        let a = cache.get_or_init(1, || vec![1, 2, 3]);
        let b = cache.get_or_init(1, || panic!("must not re-init"));
        assert_eq!(*a, *b);
        assert_eq!(cache.compute_count(), 1);
    }

    #[test]
    fn distinct_keys_distinct_values() {
        let cache = ConstantCache::<u32>::new();
        let a = cache.get_or_init(1, || 10);
        let b = cache.get_or_init(2, || 20);
        assert_eq!((*a, *b), (10, 20));
        assert_eq!(cache.compute_count(), 2);
    }

    #[test]
    fn clear_forces_reinit() {
        let cache = ConstantCache::<u32>::new();
        let _ = cache.get_or_init(1, || 10);
        cache.clear();
        let v = cache.get_or_init(1, || 11);
        assert_eq!(*v, 11);
        assert_eq!(cache.compute_count(), 2);
    }

    #[test]
    fn concurrent_access_single_init() {
        let cache = Arc::new(ConstantCache::<u64>::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || *c.get_or_init(7, || 42)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(cache.compute_count(), 1);
    }
}
