//! Pass-interaction tests: the full Graph IR pipeline on realistic
//! framework graphs, checking that passes compose (decomposition feeds
//! fusion, low-precision conversion survives cleanups, constants
//! propagate into the init stage).

use gc_graph::passes::coarse_fusion::coarse_fuse;
use gc_graph::passes::constant_fold::ConstantFold;
use gc_graph::passes::constant_weight::ConstantWeight;
use gc_graph::passes::cse::CommonSubexpressionElimination;
use gc_graph::passes::dce::DeadCodeElimination;
use gc_graph::passes::decompose::Decompose;
use gc_graph::passes::low_precision::LowPrecision;
use gc_graph::passes::{fusion, PassManager};
use gc_graph::{FusionOptions, Graph, OpCategory, OpKind, Stage, UnaryKind};
use gc_tensor::{DataType, QuantParams, Tensor, TensorDesc};

fn standard_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(Decompose)
        .add(CommonSubexpressionElimination)
        .add(DeadCodeElimination)
        .add(LowPrecision)
        .add(CommonSubexpressionElimination)
        .add(ConstantFold::default())
        .add(DeadCodeElimination)
        .add(ConstantWeight);
    pm
}

/// quantized matmul + relu + quantize, framework style
fn quantized_layer() -> Graph {
    let a_q = QuantParams::new(0.1, 4);
    let mut g = Graph::new();
    let a = g.add_input(TensorDesc::new([16, 32], DataType::U8), "a");
    let w = g.add_constant(Tensor::random(&[32, 16], DataType::I8, 1), "w");
    let af = g.add_op(OpKind::Dequantize { params: a_q }, &[a]).unwrap();
    let wf = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(0.2),
            },
            &[w],
        )
        .unwrap();
    let mm = g.add_op(OpKind::MatMul, &[af, wf]).unwrap();
    let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm]).unwrap();
    let q = g
        .add_op(
            OpKind::Quantize {
                dtype: DataType::U8,
                params: QuantParams::new(0.05, 7),
            },
            &[r],
        )
        .unwrap();
    g.mark_output(q);
    g
}

#[test]
fn pipeline_rewrites_quantized_layer_to_int8() {
    let mut g = quantized_layer();
    standard_pipeline().run_to_fixpoint(&mut g, 8).unwrap();
    g.validate().unwrap();
    let kinds: Vec<_> = g.live_ops().map(|i| g.op(i).kind.clone()).collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, OpKind::QuantizedMatMul { .. })),
        "matmul must convert: {kinds:?}"
    );
    assert!(
        !kinds.iter().any(|k| matches!(k, OpKind::Dequantize { .. })),
        "dequantize ops must die: {kinds:?}"
    );
    // fine-grain fusion then folds relu + quantize into the matmul
    let parts = fusion::fuse(&g, &FusionOptions::default()).unwrap();
    assert_eq!(parts.parts.len(), 1);
    assert_eq!(parts.parts[0].post_ops.len(), 2);
}

#[test]
fn softmax_between_matmuls_stays_fused_after_cleanups() {
    let mut g = Graph::new();
    let q = g.add_input(TensorDesc::new([4, 8, 8], DataType::F32), "q");
    let k = g.add_input(TensorDesc::new([4, 8, 8], DataType::F32), "k");
    let v = g.add_input(TensorDesc::new([4, 8, 8], DataType::F32), "v");
    let kt = g.add_op(OpKind::Transpose, &[k]).unwrap();
    let s = g.add_op(OpKind::MatMul, &[q, kt]).unwrap();
    let p = g.add_op(OpKind::Softmax, &[s]).unwrap();
    let o = g.add_op(OpKind::MatMul, &[p, v]).unwrap();
    g.mark_output(o);
    standard_pipeline().run_to_fixpoint(&mut g, 8).unwrap();
    for id in g.live_ops() {
        assert_ne!(g.op(id).kind.category(), OpCategory::Complex);
    }
    let parts = fusion::fuse(&g, &FusionOptions::default()).unwrap();
    // two fused matmuls; the first one absorbed the transpose pre-op and
    // the softmax chain post-ops
    assert_eq!(parts.parts.len(), 2);
    assert_eq!(parts.parts[0].pre_ops.len(), 1);
    assert_eq!(parts.parts[0].post_ops.len(), 5);
    // and the pair is coarse-fusable
    let groups = coarse_fuse(&g, &parts, true).unwrap();
    assert_eq!(groups.groups, vec![vec![0, 1]]);
}

#[test]
fn constant_weight_marks_init_stage_through_folding() {
    // weight -> square -> used by matmul: the square is init-stage work
    // unless folding already evaluated it; either way the main graph
    // only runs the matmul.
    let mut g = Graph::new();
    let x = g.add_input(TensorDesc::new([8, 8], DataType::F32), "x");
    // runtime constant: marked constant, no compile-time value
    let w = g.add_runtime_constant(TensorDesc::new([8, 8], DataType::F32), "w");
    let w2 = g.add_op(OpKind::Unary(UnaryKind::Square), &[w]).unwrap();
    let mm = g.add_op(OpKind::MatMul, &[x, w2]).unwrap();
    g.mark_output(mm);
    standard_pipeline().run_to_fixpoint(&mut g, 8).unwrap();
    let square = g
        .live_ops()
        .find(|&i| matches!(g.op(i).kind, OpKind::Unary(UnaryKind::Square)))
        .expect("square survives (no value to fold)");
    assert_eq!(g.op(square).stage, Stage::Init);
    let parts = fusion::fuse(&g, &FusionOptions::default()).unwrap();
    assert_eq!(parts.init_parts.len(), 1);
    assert_eq!(parts.parts.len(), 1);
}

#[test]
fn cse_and_fold_interact_across_iterations() {
    // two identical constant subexpressions: CSE merges, fold evaluates
    let mut g = Graph::new();
    let x = g.add_input(TensorDesc::new([4], DataType::F32), "x");
    let c1 = g.add_constant(
        Tensor::from_vec_f32(&[4], vec![1., 2., 3., 4.]).unwrap(),
        "c",
    );
    let a = g.add_op(OpKind::Unary(UnaryKind::Exp), &[c1]).unwrap();
    let b = g.add_op(OpKind::Unary(UnaryKind::Exp), &[c1]).unwrap();
    let s1 = g
        .add_op(OpKind::Binary(gc_graph::BinaryKind::Add), &[x, a])
        .unwrap();
    let s2 = g
        .add_op(OpKind::Binary(gc_graph::BinaryKind::Add), &[s1, b])
        .unwrap();
    g.mark_output(s2);
    standard_pipeline().run_to_fixpoint(&mut g, 8).unwrap();
    // the exp ops folded away; only the two adds remain
    let kinds: Vec<_> = g.live_ops().map(|i| g.op(i).kind.clone()).collect();
    assert_eq!(kinds.len(), 2, "{kinds:?}");
    assert!(kinds.iter().all(|k| matches!(k, OpKind::Binary(_))));
}

#[test]
fn fusion_disabled_still_partitions_everything() {
    let mut g = quantized_layer();
    standard_pipeline().run_to_fixpoint(&mut g, 8).unwrap();
    let parts = fusion::fuse(&g, &FusionOptions::disabled()).unwrap();
    let total_ops: usize = parts.parts.iter().map(|p| p.ops().len()).sum();
    assert_eq!(
        total_ops,
        g.live_ops()
            .filter(|&i| g.op(i).stage == Stage::Main)
            .count()
    );
    for p in &parts.parts {
        assert_eq!(p.ops().len(), 1);
    }
}
