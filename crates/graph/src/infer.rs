//! Shape/dtype inference for Graph IR ops.

use crate::error::{GraphError, Result};
use crate::op::OpKind;
use gc_tensor::{DataType, TensorDesc};

fn err(op: &OpKind, message: impl Into<String>) -> GraphError {
    GraphError::ShapeInference {
        op: op.mnemonic().to_string(),
        message: message.into(),
    }
}

/// Infer the output descriptor of `kind` applied to `inputs`.
///
/// # Errors
///
/// Returns [`GraphError::ShapeInference`] when input arity, shapes or
/// dtypes are invalid for the op.
pub fn infer_output(kind: &OpKind, inputs: &[&TensorDesc]) -> Result<TensorDesc> {
    match kind {
        OpKind::MatMul => {
            let [a, b] = two(kind, inputs)?;
            matmul_shape(kind, a, b, DataType::F32, a.dtype())
        }
        OpKind::QuantizedMatMul { out_params, .. } => {
            let [a, b] = two(kind, inputs)?;
            if a.dtype() != DataType::U8 || b.dtype() != DataType::I8 {
                return Err(err(kind, "expects u8 activations and i8 weights"));
            }
            let out_dt = if out_params.is_some() {
                DataType::U8
            } else {
                DataType::F32
            };
            matmul_shape(kind, a, b, out_dt, DataType::U8)
        }
        OpKind::Unary(_) => {
            let [x] = one(kind, inputs)?;
            require_f32(kind, x)?;
            Ok(TensorDesc::new(x.shape(), DataType::F32))
        }
        OpKind::Binary(_) => {
            let [a, b] = two(kind, inputs)?;
            require_f32(kind, a)?;
            require_f32(kind, b)?;
            // right-aligned broadcast of b onto a
            let (sa, sb) = (a.shape(), b.shape());
            if sb.len() > sa.len() {
                return Err(err(
                    kind,
                    format!("rhs rank {} > lhs rank {}", sb.len(), sa.len()),
                ));
            }
            let off = sa.len() - sb.len();
            for (i, &db) in sb.iter().enumerate() {
                if db != sa[off + i] && db != 1 {
                    return Err(err(kind, format!("cannot broadcast {sb:?} onto {sa:?}")));
                }
            }
            Ok(TensorDesc::new(sa, DataType::F32))
        }
        OpKind::Reduce(_) => {
            let [x] = one(kind, inputs)?;
            require_f32(kind, x)?;
            if x.rank() == 0 {
                return Err(err(kind, "cannot reduce a scalar"));
            }
            let mut shape = x.shape().to_vec();
            *shape.last_mut().unwrap() = 1;
            Ok(TensorDesc::new(shape, DataType::F32))
        }
        OpKind::Reorder { target } => {
            let [x] = one(kind, inputs)?;
            TensorDesc::with_layout(x.shape(), x.dtype(), target.clone()).map_err(Into::into)
        }
        OpKind::Transpose => {
            let [x] = one(kind, inputs)?;
            if x.rank() < 2 {
                return Err(err(kind, "transpose needs rank >= 2"));
            }
            let mut shape = x.shape().to_vec();
            let r = shape.len();
            shape.swap(r - 2, r - 1);
            Ok(TensorDesc::new(shape, x.dtype()))
        }
        OpKind::Quantize { dtype, .. } => {
            let [x] = one(kind, inputs)?;
            require_f32(kind, x)?;
            if !dtype.is_quantized_int() {
                return Err(err(kind, "target must be u8 or i8"));
            }
            Ok(TensorDesc::new(x.shape(), *dtype))
        }
        OpKind::Dequantize { .. } => {
            let [x] = one(kind, inputs)?;
            if !x.dtype().is_quantized_int() {
                return Err(err(kind, "input must be u8 or i8"));
            }
            Ok(TensorDesc::new(x.shape(), DataType::F32))
        }
        OpKind::TypeCast { to } => {
            let [x] = one(kind, inputs)?;
            Ok(TensorDesc::new(x.shape(), *to))
        }
        OpKind::Softmax => {
            let [x] = one(kind, inputs)?;
            require_f32(kind, x)?;
            if x.rank() == 0 {
                return Err(err(kind, "softmax needs rank >= 1"));
            }
            Ok(TensorDesc::new(x.shape(), DataType::F32))
        }
        OpKind::KvAppend => {
            let [cache, row, onehot] = n::<3>(kind, inputs)?;
            for d in [cache, row, onehot] {
                require_f32(kind, d)?;
            }
            let (sc, sr, so) = (cache.shape(), row.shape(), onehot.shape());
            if sc.len() != 3 || sr.len() != 3 || so.len() != 3 {
                return Err(err(kind, "expects rank-3 [B, C, D] cache"));
            }
            let (b, cap, dim) = (sc[0], sc[1], sc[2]);
            if sr != [b, 1, dim] {
                return Err(err(
                    kind,
                    format!("row {sr:?} must be [{b}, 1, {dim}] for cache {sc:?}"),
                ));
            }
            if so != [b, cap, 1] {
                return Err(err(
                    kind,
                    format!("onehot {so:?} must be [{b}, {cap}, 1] for cache {sc:?}"),
                ));
            }
            Ok(TensorDesc::new(sc, DataType::F32))
        }
        OpKind::DecodeAttention => {
            let [q, k, v, mask] = n::<4>(kind, inputs)?;
            for d in [q, k, v, mask] {
                require_f32(kind, d)?;
            }
            let (sq, sk, sv, sm) = (q.shape(), k.shape(), v.shape(), mask.shape());
            if sq.len() != 3 || sk.len() != 3 {
                return Err(err(
                    kind,
                    "expects rank-3 [B, 1, D] query over [B, C, D] cache",
                ));
            }
            let (b, cap, dim) = (sk[0], sk[1], sk[2]);
            if sq != [b, 1, dim] {
                return Err(err(
                    kind,
                    format!("query {sq:?} must be [{b}, 1, {dim}] for k cache {sk:?}"),
                ));
            }
            if sv != sk {
                return Err(err(
                    kind,
                    format!("v cache {sv:?} must match k cache {sk:?}"),
                ));
            }
            if sm != [b, 1, cap] {
                return Err(err(
                    kind,
                    format!("mask {sm:?} must be [{b}, 1, {cap}] for k cache {sk:?}"),
                ));
            }
            Ok(TensorDesc::new(sq, DataType::F32))
        }
        OpKind::BatchNormInference { .. } => {
            let descs = n::<5>(kind, inputs)?;
            let x = descs[0];
            require_f32(kind, x)?;
            let c = *x.shape().last().ok_or_else(|| err(kind, "rank >= 1"))?;
            for d in &descs[1..] {
                if d.shape() != [c] {
                    return Err(err(kind, "stats must have shape [C]"));
                }
            }
            Ok(TensorDesc::new(x.shape(), DataType::F32))
        }
        OpKind::BiasAdd => {
            let [x, b] = two(kind, inputs)?;
            require_f32(kind, x)?;
            require_f32(kind, b)?;
            let c = *x.shape().last().ok_or_else(|| err(kind, "rank >= 1"))?;
            if b.shape() != [c] {
                return Err(err(kind, "bias must have shape [C]"));
            }
            Ok(TensorDesc::new(x.shape(), DataType::F32))
        }
    }
}

fn matmul_shape(
    kind: &OpKind,
    a: &TensorDesc,
    b: &TensorDesc,
    out_dt: DataType,
    expect_a: DataType,
) -> Result<TensorDesc> {
    if a.dtype() != expect_a {
        return Err(err(kind, format!("lhs must be {expect_a}")));
    }
    let (sa, sb) = (a.shape(), b.shape());
    if sa.len() < 2 || sa.len() != sb.len() {
        return Err(err(kind, "operands must share rank >= 2"));
    }
    let r = sa.len();
    if sa[r - 1] != sb[r - 2] || sa[..r - 2] != sb[..r - 2] {
        return Err(err(kind, format!("incompatible shapes {sa:?} x {sb:?}")));
    }
    let mut shape = sa.to_vec();
    shape[r - 1] = sb[r - 1];
    Ok(TensorDesc::new(shape, out_dt))
}

fn require_f32(kind: &OpKind, d: &TensorDesc) -> Result<()> {
    if d.dtype() == DataType::F32 {
        Ok(())
    } else {
        Err(err(kind, format!("expects f32, got {}", d.dtype())))
    }
}

fn one<'a>(kind: &OpKind, inputs: &[&'a TensorDesc]) -> Result<[&'a TensorDesc; 1]> {
    match inputs {
        [a] => Ok([a]),
        _ => Err(err(kind, format!("expects 1 input, got {}", inputs.len()))),
    }
}

fn two<'a>(kind: &OpKind, inputs: &[&'a TensorDesc]) -> Result<[&'a TensorDesc; 2]> {
    match inputs {
        [a, b] => Ok([a, b]),
        _ => Err(err(kind, format!("expects 2 inputs, got {}", inputs.len()))),
    }
}

fn n<'a, const N: usize>(kind: &OpKind, inputs: &[&'a TensorDesc]) -> Result<[&'a TensorDesc; N]> {
    <[&TensorDesc; N]>::try_from(inputs.to_vec())
        .map_err(|_| err(kind, format!("expects {N} inputs, got {}", inputs.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, ReduceKind, UnaryKind};
    use gc_tensor::QuantParams;

    fn d(shape: &[usize], dt: DataType) -> TensorDesc {
        TensorDesc::new(shape, dt)
    }

    #[test]
    fn matmul_basic_and_batched() {
        let a = d(&[4, 8], DataType::F32);
        let b = d(&[8, 3], DataType::F32);
        let o = infer_output(&OpKind::MatMul, &[&a, &b]).unwrap();
        assert_eq!(o.shape(), &[4, 3]);

        let a = d(&[2, 4, 8], DataType::F32);
        let b = d(&[2, 8, 3], DataType::F32);
        let o = infer_output(&OpKind::MatMul, &[&a, &b]).unwrap();
        assert_eq!(o.shape(), &[2, 4, 3]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = d(&[4, 8], DataType::F32);
        let b = d(&[7, 3], DataType::F32);
        assert!(infer_output(&OpKind::MatMul, &[&a, &b]).is_err());
        let b = d(&[8], DataType::F32);
        assert!(infer_output(&OpKind::MatMul, &[&a, &b]).is_err());
    }

    #[test]
    fn qmatmul_types() {
        let a = d(&[4, 8], DataType::U8);
        let b = d(&[8, 3], DataType::I8);
        let k = OpKind::QuantizedMatMul {
            a_params: QuantParams::new(0.1, 3),
            b_scale: 0.2,
            out_params: Some(QuantParams::new(0.3, 0)),
        };
        let o = infer_output(&k, &[&a, &b]).unwrap();
        assert_eq!(o.dtype(), DataType::U8);
        let k2 = OpKind::QuantizedMatMul {
            a_params: QuantParams::new(0.1, 3),
            b_scale: 0.2,
            out_params: None,
        };
        let o2 = infer_output(&k2, &[&a, &b]).unwrap();
        assert_eq!(o2.dtype(), DataType::F32);
        // f32 activations rejected
        let af = d(&[4, 8], DataType::F32);
        assert!(infer_output(&k2, &[&af, &b]).is_err());
    }

    #[test]
    fn unary_preserves_shape() {
        let x = d(&[3, 5], DataType::F32);
        let o = infer_output(&OpKind::Unary(UnaryKind::Relu), &[&x]).unwrap();
        assert_eq!(o.shape(), &[3, 5]);
        let xi = d(&[3], DataType::I8);
        assert!(infer_output(&OpKind::Unary(UnaryKind::Relu), &[&xi]).is_err());
    }

    #[test]
    fn binary_broadcast_rules() {
        let a = d(&[2, 3], DataType::F32);
        let row = d(&[3], DataType::F32);
        let keep = d(&[2, 1], DataType::F32);
        let bad = d(&[2], DataType::F32);
        assert!(infer_output(&OpKind::Binary(BinaryKind::Add), &[&a, &row]).is_ok());
        assert!(infer_output(&OpKind::Binary(BinaryKind::Add), &[&a, &keep]).is_ok());
        assert!(infer_output(&OpKind::Binary(BinaryKind::Add), &[&a, &bad]).is_err());
    }

    #[test]
    fn reduce_keeps_dim() {
        let x = d(&[4, 7], DataType::F32);
        let o = infer_output(&OpKind::Reduce(ReduceKind::Max), &[&x]).unwrap();
        assert_eq!(o.shape(), &[4, 1]);
    }

    #[test]
    fn quant_dequant() {
        let x = d(&[4], DataType::F32);
        let q = infer_output(
            &OpKind::Quantize {
                dtype: DataType::U8,
                params: QuantParams::default(),
            },
            &[&x],
        )
        .unwrap();
        assert_eq!(q.dtype(), DataType::U8);
        let dq = infer_output(
            &OpKind::Dequantize {
                params: QuantParams::default(),
            },
            &[&q],
        )
        .unwrap();
        assert_eq!(dq.dtype(), DataType::F32);
        // quantize to f32 is invalid
        assert!(infer_output(
            &OpKind::Quantize {
                dtype: DataType::F32,
                params: QuantParams::default()
            },
            &[&x]
        )
        .is_err());
    }

    #[test]
    fn transpose_swaps() {
        let x = d(&[2, 3, 4], DataType::F32);
        let o = infer_output(&OpKind::Transpose, &[&x]).unwrap();
        assert_eq!(o.shape(), &[2, 4, 3]);
    }

    #[test]
    fn batchnorm_and_bias() {
        let x = d(&[8, 16], DataType::F32);
        let c = d(&[16], DataType::F32);
        let o = infer_output(
            &OpKind::BatchNormInference { epsilon: 1e-5 },
            &[&x, &c, &c, &c, &c],
        )
        .unwrap();
        assert_eq!(o.shape(), &[8, 16]);
        let o = infer_output(&OpKind::BiasAdd, &[&x, &c]).unwrap();
        assert_eq!(o.shape(), &[8, 16]);
        let wrong = d(&[15], DataType::F32);
        assert!(infer_output(&OpKind::BiasAdd, &[&x, &wrong]).is_err());
    }

    #[test]
    fn arity_errors() {
        let x = d(&[2], DataType::F32);
        assert!(infer_output(&OpKind::MatMul, &[&x]).is_err());
        assert!(infer_output(&OpKind::Softmax, &[&x, &x]).is_err());
    }
}
