//! Graph IR operations.
//!
//! Following the paper, OPs are classified as:
//!
//! - **Complex** — high-level framework ops (softmax, batchnorm, bias)
//!   that the decomposition pass breaks into basic ops;
//! - **Tunable** — compute-intensive ops lowered by instantiating a
//!   microkernel-based template (matmul, quantized matmul);
//! - **Fusible** — elementwise / broadcast / reduction / data-movement
//!   ops that can be fused into a Tunable OP's anchors.

use gc_tensor::{DataType, Layout, QuantParams};
use std::fmt;

/// Unary elementwise op kinds (all Fusible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryKind {
    /// Rectified linear unit.
    Relu,
    /// GELU (tanh approximation).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponential.
    Exp,
    /// Square.
    Square,
    /// Negation.
    Neg,
    /// Identity / copy.
    Identity,
}

/// Binary elementwise op kinds (all Fusible; rhs broadcasts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Reduction kinds over the last axis (keepdim), Fusible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Sum.
    Sum,
    /// Maximum.
    Max,
}

/// The paper's OP categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Lowered via a parameterized template (compute-intensive).
    Tunable,
    /// Fusable into a Tunable OP's anchor points.
    Fusible,
    /// Must be decomposed into basic ops before optimization.
    Complex,
}

/// Operation kind, including any attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    // ---- Tunable ----
    /// `C[..., M, N] = A[..., M, K] x B[..., K, N]` in f32.
    MatMul,
    /// Int8 matmul produced by low-precision conversion:
    /// u8 activations × i8 weights with fused requantization epilogue.
    QuantizedMatMul {
        /// Activation quantization parameters.
        a_params: QuantParams,
        /// Weight scale (symmetric).
        b_scale: f32,
        /// Output quantization parameters; `None` leaves f32 output.
        out_params: Option<QuantParams>,
    },

    // ---- Fusible ----
    /// Unary elementwise.
    Unary(UnaryKind),
    /// Binary elementwise; the second input broadcasts (right-aligned).
    Binary(BinaryKind),
    /// Reduction over the last axis, keeping the axis with extent 1.
    Reduce(ReduceKind),
    /// Copy into a different memory layout.
    Reorder {
        /// Destination layout.
        target: Layout,
    },
    /// Transpose of the last two axes.
    Transpose,
    /// f32 → quantized int.
    Quantize {
        /// Target type (`U8` or `I8`).
        dtype: DataType,
        /// Quantization parameters.
        params: QuantParams,
    },
    /// Quantized int → f32.
    Dequantize {
        /// Quantization parameters.
        params: QuantParams,
    },
    /// Elementwise type cast.
    TypeCast {
        /// Destination type.
        to: DataType,
    },

    // ---- Complex ----
    /// Softmax over the last axis.
    Softmax,
    /// KV-cache row write (autoregressive decode): inputs
    /// `[cache [B, C, D], row [B, 1, D], onehot [B, C, 1]]`, output the
    /// updated cache `[B, C, D]` with `row` written at the position
    /// selected by the one-hot tensor (1.0 at the write slot, 0.0
    /// elsewhere, per batch entry). Functional semantics — the serving
    /// runtime performs the same write in place on its session caches;
    /// the graph form exists for reference evaluation and compiled
    /// differential tests. Writing to a zeroed slot is bit-exact
    /// (`c - (c - r) * 1` with `c = 0` is IEEE-exact `r`).
    KvAppend,
    /// Masked single-query attention against a KV cache (one decode
    /// step): inputs `[q [B, 1, D], k_cache [B, C, D], v_cache
    /// [B, C, D], mask [B, 1, C]]`, output `[B, 1, D]` =
    /// `softmax(q x k^T / sqrt(D) + mask) x v`. Cache slots past the
    /// session's valid length are masked with a large negative value so
    /// one capacity bucket `C` serves every position below it.
    DecodeAttention,
    /// Inference batch-norm `gamma * (x - mean) / sqrt(var + eps) + beta`,
    /// inputs: `[x, gamma, beta, mean, var]`.
    BatchNormInference {
        /// Numerical-stability epsilon.
        epsilon: f32,
    },
    /// Bias addition (row-vector add, framework-level op).
    BiasAdd,
}

impl OpKind {
    /// The paper's category of this op kind.
    pub fn category(&self) -> OpCategory {
        match self {
            OpKind::MatMul | OpKind::QuantizedMatMul { .. } => OpCategory::Tunable,
            OpKind::Unary(_)
            | OpKind::Binary(_)
            | OpKind::Reduce(_)
            | OpKind::Reorder { .. }
            | OpKind::Transpose
            | OpKind::Quantize { .. }
            | OpKind::Dequantize { .. }
            | OpKind::TypeCast { .. } => OpCategory::Fusible,
            OpKind::Softmax
            | OpKind::KvAppend
            | OpKind::DecodeAttention
            | OpKind::BatchNormInference { .. }
            | OpKind::BiasAdd => OpCategory::Complex,
        }
    }

    /// Short mnemonic used by the printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::MatMul => "matmul",
            OpKind::QuantizedMatMul { .. } => "qmatmul",
            OpKind::Unary(UnaryKind::Relu) => "relu",
            OpKind::Unary(UnaryKind::Gelu) => "gelu",
            OpKind::Unary(UnaryKind::Sigmoid) => "sigmoid",
            OpKind::Unary(UnaryKind::Tanh) => "tanh",
            OpKind::Unary(UnaryKind::Exp) => "exp",
            OpKind::Unary(UnaryKind::Square) => "square",
            OpKind::Unary(UnaryKind::Neg) => "neg",
            OpKind::Unary(UnaryKind::Identity) => "identity",
            OpKind::Binary(BinaryKind::Add) => "add",
            OpKind::Binary(BinaryKind::Sub) => "sub",
            OpKind::Binary(BinaryKind::Mul) => "mul",
            OpKind::Binary(BinaryKind::Div) => "div",
            OpKind::Binary(BinaryKind::Max) => "max",
            OpKind::Binary(BinaryKind::Min) => "min",
            OpKind::Reduce(ReduceKind::Sum) => "reduce_sum",
            OpKind::Reduce(ReduceKind::Max) => "reduce_max",
            OpKind::Reorder { .. } => "reorder",
            OpKind::Transpose => "transpose",
            OpKind::Quantize { .. } => "quantize",
            OpKind::Dequantize { .. } => "dequantize",
            OpKind::TypeCast { .. } => "typecast",
            OpKind::Softmax => "softmax",
            OpKind::KvAppend => "kv_append",
            OpKind::DecodeAttention => "decode_attention",
            OpKind::BatchNormInference { .. } => "batchnorm",
            OpKind::BiasAdd => "bias_add",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Execution stage of an op after constant-weight preprocessing: ops in
/// the `Init` stage run once, on first execution, over runtime constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Stage {
    /// Runs on every execution.
    #[default]
    Main,
    /// Runs only on the first execution (constant preprocessing).
    Init,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(OpKind::MatMul.category(), OpCategory::Tunable);
        assert_eq!(
            OpKind::Unary(UnaryKind::Relu).category(),
            OpCategory::Fusible
        );
        assert_eq!(OpKind::Softmax.category(), OpCategory::Complex);
        assert_eq!(OpKind::BiasAdd.category(), OpCategory::Complex);
        assert_eq!(
            OpKind::Reorder {
                target: Layout::Plain
            }
            .category(),
            OpCategory::Fusible
        );
    }

    #[test]
    fn mnemonics_are_distinct_for_common_ops() {
        let kinds = [
            OpKind::MatMul,
            OpKind::Unary(UnaryKind::Relu),
            OpKind::Binary(BinaryKind::Add),
            OpKind::Reduce(ReduceKind::Sum),
            OpKind::Softmax,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in &kinds {
            assert!(seen.insert(k.mnemonic()));
        }
    }

    #[test]
    fn default_stage_is_main() {
        assert_eq!(Stage::default(), Stage::Main);
    }
}
