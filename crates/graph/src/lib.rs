//! Graph IR for the oneDNN Graph Compiler reproduction.
//!
//! The Graph IR "keeps the DNN OP semantics, so most domain-specific
//! optimizations are done at this level" (paper, §High-level Design).
//! This crate provides:
//!
//! - the IR itself: [`Graph`], [`LogicalTensor`], [`Op`] with
//!   Tunable / Fusible / Complex categories;
//! - shape/dtype inference ([`infer`]);
//! - the pass framework and every graph-level optimization the paper
//!   describes ([`passes`]): complex-op decomposition, CSE, DCE,
//!   constant folding, low-precision conversion, constant-weight
//!   preprocessing, layout propagation, and fine-/coarse-grain fusion;
//! - the fused-op partitioning produced by fusion.
//!
//! # Examples
//!
//! ```
//! use gc_graph::{Graph, OpKind, UnaryKind};
//! use gc_tensor::{DataType, Tensor, TensorDesc};
//!
//! let mut g = Graph::new();
//! let x = g.add_input(TensorDesc::new([16, 32], DataType::F32), "x");
//! let w = g.add_constant(Tensor::random(&[32, 8], DataType::F32, 0), "w");
//! let y = g.add_op(OpKind::MatMul, &[x, w])?;
//! let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y])?;
//! g.mark_output(z);
//! g.validate()?;
//! # Ok::<(), gc_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

mod error;
pub mod fingerprint;
mod graph;
pub mod infer;
mod op;
pub mod passes;

pub use error::{GraphError, Result};
pub use fingerprint::{combine, graph_fingerprint, Fnv1a};
pub use graph::{Graph, LogicalTensor, LtId, Op, OpId, Property};
pub use op::{BinaryKind, OpCategory, OpKind, ReduceKind, Stage, UnaryKind};
pub use passes::coarse_fusion::CoarseGroups;
pub use passes::fusion::{FusedOp, FusionOptions, Partitioning};
