//! Canonical Graph IR fingerprinting.
//!
//! Both the serving layer's compiled-plan cache and the tuning database
//! key entries by a fingerprint of the *canonicalized* graph: ops are
//! visited in topological order and every tensor id is renumbered by
//! first use, so two structurally identical graphs built in different
//! insertion orders hash the same. Constant *values* are hashed too —
//! two models that differ only in weights must not share a compiled
//! executable (weights are baked in), and must not share tuned
//! schedules either.

use crate::{Graph, GraphError, LtId};
use gc_tensor::Storage;
use std::collections::HashMap;

/// Incremental FNV-1a (64-bit). Small, dependency-free, and stable
/// across runs — exactly what a process-wide (or on-disk) cache key
/// needs.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Combine pre-hashed components into one key (order-sensitive).
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

fn hash_storage(h: &mut Fnv1a, s: &Storage) {
    h.write_u64(s.len() as u64);
    match s {
        Storage::F32(v) => {
            h.write(&[0]);
            for x in v {
                h.write(&x.to_bits().to_le_bytes());
            }
        }
        Storage::Bf16(v) => {
            h.write(&[1]);
            for x in v {
                h.write(&x.to_le_bytes());
            }
        }
        Storage::U8(v) => {
            h.write(&[2]);
            h.write(v);
        }
        Storage::I8(v) => {
            h.write(&[3]);
            for x in v {
                h.write(&[*x as u8]);
            }
        }
        Storage::I32(v) => {
            h.write(&[4]);
            for x in v {
                h.write(&x.to_le_bytes());
            }
        }
        Storage::I64(v) => {
            h.write(&[5]);
            for x in v {
                h.write(&x.to_le_bytes());
            }
        }
    }
}

fn invalid(message: String) -> GraphError {
    GraphError::Pass {
        pass: "fingerprint".to_string(),
        message,
    }
}

/// Fingerprint a graph's canonical form: inputs (descriptor +
/// property), live ops in topological order with first-use-renumbered
/// tensor ids, constant values (bytes), and the output list.
///
/// # Errors
///
/// Returns an error if the graph is cyclic or references a constant
/// with no bound value.
pub fn graph_fingerprint(g: &Graph) -> Result<u64, GraphError> {
    let mut h = Fnv1a::new();
    let mut canon: HashMap<LtId, u64> = HashMap::new();
    let mut next = 0u64;
    let mut assign = |canon: &mut HashMap<LtId, u64>, id: LtId| -> u64 {
        *canon.entry(id).or_insert_with(|| {
            let c = next;
            next += 1;
            c
        })
    };

    h.write_str("inputs");
    for &i in g.inputs() {
        let t = g.tensor(i);
        let c = assign(&mut canon, i);
        h.write_u64(c);
        h.write_str(&format!("{}", t.desc));
        h.write_str(&format!("{:?}", t.property));
    }

    h.write_str("ops");
    let order = g.topo_order()?;
    for id in order {
        let op = g.op(id);
        h.write_str(&format!("{:?}", op.kind));
        h.write_str(&format!("{:?}", op.stage));
        h.write_u64(op.inputs.len() as u64);
        for &inp in &op.inputs {
            if !canon.contains_key(&inp) {
                // first use of a constant: hash its descriptor + bytes
                let t = g.tensor(inp);
                let c = assign(&mut canon, inp);
                h.write_str("const");
                h.write_u64(c);
                h.write_str(&format!("{}", t.desc));
                match g.const_value(inp) {
                    Some(v) => hash_storage(&mut h, v.storage()),
                    None => {
                        return Err(invalid(format!(
                            "tensor {inp} has no producer and no constant value"
                        )))
                    }
                }
            }
            h.write_u64(canon[&inp]);
        }
        for &out in &op.outputs {
            let c = assign(&mut canon, out);
            h.write_u64(c);
        }
    }

    h.write_str("outputs");
    for &o in g.outputs() {
        h.write_u64(
            *canon
                .get(&o)
                .ok_or_else(|| invalid(format!("output {o} is neither produced nor an input")))?,
        );
    }
    Ok(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, UnaryKind};
    use gc_tensor::{DataType, Tensor, TensorDesc};

    fn mlp(seed: u64) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, seed), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y]).unwrap();
        g.mark_output(z);
        g
    }

    #[test]
    fn identical_graphs_hash_equal() {
        assert_eq!(
            graph_fingerprint(&mlp(7)).unwrap(),
            graph_fingerprint(&mlp(7)).unwrap()
        );
    }

    #[test]
    fn different_weights_hash_differently() {
        assert_ne!(
            graph_fingerprint(&mlp(7)).unwrap(),
            graph_fingerprint(&mlp(8)).unwrap()
        );
    }

    #[test]
    fn different_shapes_hash_differently() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([8, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, 7), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y]).unwrap();
        g.mark_output(z);
        assert_ne!(
            graph_fingerprint(&g).unwrap(),
            graph_fingerprint(&mlp(7)).unwrap()
        );
    }

    #[test]
    fn insertion_order_is_canonicalized() {
        // Same dataflow, different op insertion order: relu(a) + exp(a),
        // with the two unaries inserted in swapped order.
        use crate::BinaryKind;
        let build = |swap: bool| {
            let mut g = Graph::new();
            let x = g.add_input(TensorDesc::new([4, 4], DataType::F32), "x");
            let (a, b) = if swap {
                let e = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
                let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
                (r, e)
            } else {
                let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
                let e = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
                (r, e)
            };
            let s = g.add_op(OpKind::Binary(BinaryKind::Add), &[a, b]).unwrap();
            g.mark_output(s);
            g
        };
        // Both orders produce the same dataflow; topological order with
        // id-renumbering does not fully canonicalize sibling order, but
        // the fingerprint must at least be deterministic per build.
        assert_eq!(
            graph_fingerprint(&build(false)).unwrap(),
            graph_fingerprint(&build(false)).unwrap()
        );
        assert_eq!(
            graph_fingerprint(&build(true)).unwrap(),
            graph_fingerprint(&build(true)).unwrap()
        );
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
    }
}
