//! The Graph IR: graph, logical tensor and OP.

use crate::error::{GraphError, Result};
use crate::infer::infer_output;
use crate::op::{OpKind, Stage};
use gc_tensor::{Layout, Tensor, TensorDesc};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a logical tensor within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LtId(pub usize);

/// Identifier of an op within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for LtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Whether a logical tensor's contents are fixed across executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Property {
    /// Normal data tensor.
    #[default]
    Variable,
    /// Constant at execution time (weights, folded constants, and
    /// anything computed only from constants).
    Constant,
}

/// A logical tensor: metadata only — dtype, shape, layout, property.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalTensor {
    /// Tensor metadata.
    pub desc: TensorDesc,
    /// Constant-ness (propagated by constant-weight preprocessing).
    pub property: Property,
    /// Debug name.
    pub name: String,
}

/// One operation node.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Kind plus attributes.
    pub kind: OpKind,
    /// Input logical tensors.
    pub inputs: Vec<LtId>,
    /// Output logical tensors (always 1 today, kept plural for parity
    /// with the paper's model).
    pub outputs: Vec<LtId>,
    /// Execution stage (main vs one-time init).
    pub stage: Stage,
    /// Liveness flag; dead ops are skipped everywhere and reclaimed by
    /// DCE-style passes.
    pub alive: bool,
}

/// A DNN computation graph of basic and complex OPs.
///
/// # Examples
///
/// ```
/// use gc_graph::{Graph, OpKind};
/// use gc_tensor::{DataType, TensorDesc};
///
/// let mut g = Graph::new();
/// let a = g.add_input(TensorDesc::new([4, 8], DataType::F32), "a");
/// let b = g.add_input(TensorDesc::new([8, 2], DataType::F32), "b");
/// let c = g.add_op(OpKind::MatMul, &[a, b])?;
/// g.mark_output(c);
/// assert_eq!(g.desc(c).shape(), &[4, 2]);
/// # Ok::<(), gc_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    tensors: Vec<LogicalTensor>,
    ops: Vec<Op>,
    inputs: Vec<LtId>,
    outputs: Vec<LtId>,
    /// Compile-time bound values for constant tensors.
    const_values: HashMap<LtId, Tensor>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Add a graph input tensor and return its id.
    pub fn add_input(&mut self, desc: TensorDesc, name: &str) -> LtId {
        let id = self.add_tensor(desc, Property::Variable, name);
        self.inputs.push(id);
        id
    }

    /// Add a constant tensor with a bound value (e.g. a weight).
    pub fn add_constant(&mut self, value: Tensor, name: &str) -> LtId {
        let id = self.add_tensor(value.desc().clone(), Property::Constant, name);
        self.const_values.insert(id, value);
        id
    }

    /// Add a constant *placeholder*: marked constant but with no bound
    /// value (a "runtime constant" whose buffer arrives at first
    /// execution, per the paper).
    pub fn add_runtime_constant(&mut self, desc: TensorDesc, name: &str) -> LtId {
        let id = self.add_tensor(desc, Property::Constant, name);
        self.inputs.push(id);
        id
    }

    fn add_tensor(&mut self, desc: TensorDesc, property: Property, name: &str) -> LtId {
        let id = LtId(self.tensors.len());
        self.tensors.push(LogicalTensor {
            desc,
            property,
            name: name.to_string(),
        });
        id
    }

    /// Append an op, inferring its output tensor. Returns the output id.
    ///
    /// # Errors
    ///
    /// Returns an error if an input id is unknown or shape inference
    /// fails.
    pub fn add_op(&mut self, kind: OpKind, inputs: &[LtId]) -> Result<LtId> {
        for &i in inputs {
            if i.0 >= self.tensors.len() {
                return Err(GraphError::UnknownTensor(i.0));
            }
        }
        let descs: Vec<&TensorDesc> = inputs.iter().map(|&i| &self.tensors[i.0].desc).collect();
        let out_desc = infer_output(&kind, &descs)?;
        let name = format!("{}_{}", kind.mnemonic(), self.ops.len());
        let out = self.add_tensor(out_desc, Property::Variable, &name);
        self.ops.push(Op {
            kind,
            inputs: inputs.to_vec(),
            outputs: vec![out],
            stage: Stage::Main,
            alive: true,
        });
        Ok(out)
    }

    /// Mark a tensor as a graph output.
    pub fn mark_output(&mut self, id: LtId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Remove a tensor from the graph outputs (used when a pass
    /// re-points an output through an inserted op).
    pub fn unmark_output(&mut self, id: LtId) {
        self.outputs.retain(|&o| o != id);
    }

    /// Graph input tensor ids.
    pub fn inputs(&self) -> &[LtId] {
        &self.inputs
    }

    /// Graph output tensor ids.
    pub fn outputs(&self) -> &[LtId] {
        &self.outputs
    }

    /// Descriptor of a logical tensor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn desc(&self, id: LtId) -> &TensorDesc {
        &self.tensors[id.0].desc
    }

    /// Full logical-tensor record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn tensor(&self, id: LtId) -> &LogicalTensor {
        &self.tensors[id.0]
    }

    /// Mutable logical-tensor record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn tensor_mut(&mut self, id: LtId) -> &mut LogicalTensor {
        &mut self.tensors[id.0]
    }

    /// The op node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0]
    }

    /// Mutable op node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn op_mut(&mut self, id: OpId) -> &mut Op {
        &mut self.ops[id.0]
    }

    /// Number of op slots (including dead ops).
    pub fn op_slots(&self) -> usize {
        self.ops.len()
    }

    /// Iterate live op ids in insertion order.
    pub fn live_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.alive)
            .map(|(i, _)| OpId(i))
    }

    /// The live op producing tensor `id`, if any.
    pub fn producer(&self, id: LtId) -> Option<OpId> {
        self.ops
            .iter()
            .enumerate()
            .find(|(_, o)| o.alive && o.outputs.contains(&id))
            .map(|(i, _)| OpId(i))
    }

    /// All live ops consuming tensor `id`.
    pub fn consumers(&self, id: LtId) -> Vec<OpId> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.alive && o.inputs.contains(&id))
            .map(|(i, _)| OpId(i))
            .collect()
    }

    /// Bound compile-time value of a constant tensor, if any.
    pub fn const_value(&self, id: LtId) -> Option<&Tensor> {
        self.const_values.get(&id)
    }

    /// Bind (or rebind) a compile-time constant value.
    pub fn bind_const(&mut self, id: LtId, value: Tensor) {
        self.tensors[id.0].property = Property::Constant;
        self.const_values.insert(id, value);
    }

    /// Insert a new tensor mirroring `src`'s desc (fresh id) — used by
    /// rewriting passes.
    pub fn clone_tensor(&mut self, src: LtId, name: &str) -> LtId {
        let desc = self.tensors[src.0].desc.clone();
        self.add_tensor(desc, Property::Variable, name)
    }

    /// Insert a raw tensor with an explicit descriptor.
    pub fn new_tensor(&mut self, desc: TensorDesc, name: &str) -> LtId {
        self.add_tensor(desc, Property::Variable, name)
    }

    /// Replace every use of `old` (op inputs and graph outputs) with
    /// `new`.
    pub fn replace_uses(&mut self, old: LtId, new: LtId) {
        for op in self.ops.iter_mut().filter(|o| o.alive) {
            for i in &mut op.inputs {
                if *i == old {
                    *i = new;
                }
            }
        }
        for o in &mut self.outputs {
            if *o == old {
                *o = new;
            }
        }
    }

    /// Kill an op (mark dead).
    pub fn kill_op(&mut self, id: OpId) {
        self.ops[id.0].alive = false;
    }

    /// Live ops in topological order (inputs before users).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the live subgraph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>> {
        let live: Vec<OpId> = self.live_ops().collect();
        let mut produced: HashMap<LtId, OpId> = HashMap::new();
        for &id in &live {
            for &o in &self.ops[id.0].outputs {
                if produced.insert(o, id).is_some() {
                    return Err(GraphError::MultipleProducers(o.0));
                }
            }
        }
        let mut indegree: HashMap<OpId, usize> = HashMap::new();
        let mut dependents: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for &id in &live {
            let mut deg = 0;
            for &inp in &self.ops[id.0].inputs {
                if let Some(&p) = produced.get(&inp) {
                    deg += 1;
                    dependents.entry(p).or_default().push(id);
                }
            }
            indegree.insert(id, deg);
        }
        let mut ready: Vec<OpId> = live
            .iter()
            .copied()
            .filter(|id| indegree[id] == 0)
            .collect();
        ready.sort();
        let mut order = Vec::with_capacity(live.len());
        while let Some(id) = ready.pop() {
            order.push(id);
            for &d in dependents.get(&id).map(|v| v.as_slice()).unwrap_or(&[]) {
                let e = indegree.get_mut(&d).unwrap();
                *e -= 1;
                if *e == 0 {
                    ready.push(d);
                }
            }
            ready.sort();
            ready.reverse(); // pop smallest id first for determinism
        }
        if order.len() != live.len() {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// Validate the graph: ids in range, single producers, acyclic, and
    /// op output descs consistent with inference.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        for op in self.ops.iter().filter(|o| o.alive) {
            for &i in op.inputs.iter().chain(&op.outputs) {
                if i.0 >= self.tensors.len() {
                    return Err(GraphError::UnknownTensor(i.0));
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Pretty-print the live graph.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        for (i, t) in self.tensors.iter().enumerate() {
            let marks = match (
                self.inputs.contains(&LtId(i)),
                self.outputs.contains(&LtId(i)),
            ) {
                (true, _) => " (input)",
                (_, true) => " (output)",
                _ => "",
            };
            let c = if t.property == Property::Constant {
                " const"
            } else {
                ""
            };
            let _ = writeln!(s, "t{i}: {}{c}{marks}  // {}", t.desc, t.name);
        }
        for id in self.live_ops() {
            let op = &self.ops[id.0];
            let ins: Vec<String> = op.inputs.iter().map(|i| i.to_string()).collect();
            let outs: Vec<String> = op.outputs.iter().map(|o| o.to_string()).collect();
            let stage = if op.stage == Stage::Init {
                " [init]"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "{} = {}({}){stage}",
                outs.join(", "),
                op.kind,
                ins.join(", ")
            );
        }
        s
    }

    /// Change a tensor's layout in place (used by layout propagation
    /// when re-describing an op's operand).
    ///
    /// # Errors
    ///
    /// Returns an error if the layout is invalid for the shape.
    pub fn set_layout(&mut self, id: LtId, layout: Layout) -> Result<()> {
        let t = &mut self.tensors[id.0];
        t.desc = t.desc.reinterpret_layout(layout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, UnaryKind};
    use gc_tensor::DataType;

    fn simple_mlp() -> (Graph, LtId) {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, 1), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y]).unwrap();
        g.mark_output(z);
        (g, z)
    }

    #[test]
    fn build_and_validate() {
        let (g, z) = simple_mlp();
        g.validate().unwrap();
        assert_eq!(g.desc(z).shape(), &[4, 4]);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs(), &[z]);
    }

    #[test]
    fn producer_and_consumers() {
        let (g, z) = simple_mlp();
        let relu = g.producer(z).unwrap();
        assert_eq!(g.op(relu).kind, OpKind::Unary(UnaryKind::Relu));
        let mm_out = g.op(relu).inputs[0];
        assert_eq!(g.consumers(mm_out), vec![relu]);
        let x = g.inputs()[0];
        assert_eq!(g.producer(x), None);
    }

    #[test]
    fn topo_order_respects_deps() {
        let (g, _) = simple_mlp();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 2);
        assert!(order[0] < order[1]);
    }

    #[test]
    fn diamond_topo() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 4], DataType::F32), "x");
        let a = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        let b = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let c = g.add_op(OpKind::Binary(BinaryKind::Add), &[a, b]).unwrap();
        g.mark_output(c);
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order[2], g.producer(c).unwrap());
    }

    #[test]
    fn kill_and_replace() {
        let (mut g, z) = simple_mlp();
        let relu = g.producer(z).unwrap();
        let mm_out = g.op(relu).inputs[0];
        // bypass relu
        g.replace_uses(z, mm_out);
        g.kill_op(relu);
        g.validate().unwrap();
        assert_eq!(g.outputs(), &[mm_out]);
        assert_eq!(g.live_ops().count(), 1);
    }

    #[test]
    fn constants_carry_values() {
        let (g, _) = simple_mlp();
        let w = LtId(1);
        assert_eq!(g.tensor(w).property, Property::Constant);
        assert!(g.const_value(w).is_some());
        assert!(g.const_value(g.inputs()[0]).is_none());
    }

    #[test]
    fn unknown_input_rejected() {
        let mut g = Graph::new();
        let err = g.add_op(OpKind::Softmax, &[LtId(9)]).unwrap_err();
        assert!(matches!(err, GraphError::UnknownTensor(9)));
    }

    #[test]
    fn to_text_mentions_ops() {
        let (g, _) = simple_mlp();
        let text = g.to_text();
        assert!(text.contains("matmul"));
        assert!(text.contains("relu"));
        assert!(text.contains("const"));
    }

    #[test]
    fn runtime_constant_is_input_and_constant() {
        let mut g = Graph::new();
        let w = g.add_runtime_constant(TensorDesc::new([2, 2], DataType::F32), "w");
        assert!(g.inputs().contains(&w));
        assert_eq!(g.tensor(w).property, Property::Constant);
        assert!(g.const_value(w).is_none());
    }
}
