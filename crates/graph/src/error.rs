//! Error type for Graph IR construction and passes.

use std::fmt;

/// Error produced by Graph IR construction, validation, or a pass.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An op referenced a logical tensor id that does not exist.
    UnknownTensor(usize),
    /// An op id was out of range.
    UnknownOp(usize),
    /// Shape inference failed for an op.
    ShapeInference {
        /// Mnemonic of the offending op.
        op: String,
        /// Explanation.
        message: String,
    },
    /// The graph contains a cycle.
    Cycle,
    /// A logical tensor has more than one producer.
    MultipleProducers(usize),
    /// A pass precondition was violated.
    Pass {
        /// Pass name.
        pass: String,
        /// Explanation.
        message: String,
    },
    /// Underlying tensor error.
    Tensor(gc_tensor::TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTensor(id) => write!(f, "unknown logical tensor t{id}"),
            GraphError::UnknownOp(id) => write!(f, "unknown op #{id}"),
            GraphError::ShapeInference { op, message } => {
                write!(f, "shape inference failed for {op}: {message}")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::MultipleProducers(id) => {
                write!(f, "logical tensor t{id} has multiple producers")
            }
            GraphError::Pass { pass, message } => write!(f, "pass {pass}: {message}"),
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gc_tensor::TensorError> for GraphError {
    fn from(e: gc_tensor::TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            GraphError::UnknownTensor(3).to_string(),
            "unknown logical tensor t3"
        );
        assert!(GraphError::Cycle.to_string().contains("cycle"));
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        use std::error::Error;
        let te = gc_tensor::TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        };
        let ge: GraphError = te.into();
        assert!(ge.source().is_some());
    }
}
