//! Graph IR optimization passes.
//!
//! The Graph IR optimization module "first decomposes complex OPs into
//! basic DNN OPs", then applies "general compiler optimizations like
//! common subexpression elimination, dead code elimination, and constant
//! folding" plus "domain-specific optimizations like low-precision
//! conversion, tensor memory layout propagation, constant weight
//! preprocessing, and fusion" (paper, §Graph IR Optimization).

pub mod coarse_fusion;
pub mod constant_fold;
pub mod constant_weight;
pub mod cse;
pub mod dce;
pub mod decompose;
pub mod fusion;
pub mod layout_propagation;
pub mod low_precision;

use crate::error::Result;
use crate::graph::Graph;

/// A rewriting pass over the Graph IR.
pub trait Pass {
    /// Diagnostic name.
    fn name(&self) -> &'static str;

    /// Run on `graph`; returns whether anything changed.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph violates the pass's preconditions.
    fn run(&self, graph: &mut Graph) -> Result<bool>;
}

/// Runs a sequence of passes, optionally to a fixpoint.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    trace: bool,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Append a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Log pass activity to stderr (debugging aid).
    pub fn with_trace(&mut self, on: bool) -> &mut Self {
        self.trace = on;
        self
    }

    /// Run every pass once, in order; validates after each changing
    /// pass. Returns whether any pass changed the graph.
    ///
    /// # Errors
    ///
    /// Propagates pass and validation errors.
    pub fn run(&self, graph: &mut Graph) -> Result<bool> {
        let mut changed = false;
        for pass in &self.passes {
            let c = pass.run(graph)?;
            if c {
                graph.validate()?;
            }
            if self.trace {
                eprintln!("[pass] {}: changed={c}", pass.name());
            }
            changed |= c;
        }
        Ok(changed)
    }

    /// Run the pipeline repeatedly until no pass changes the graph (with
    /// an iteration cap to guard against oscillation).
    ///
    /// # Errors
    ///
    /// Propagates pass and validation errors.
    pub fn run_to_fixpoint(&self, graph: &mut Graph, max_iters: usize) -> Result<()> {
        for _ in 0..max_iters {
            if !self.run(graph)? {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// The standard cleanup trio used between major rewrites.
pub fn cleanup() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(cse::CommonSubexpressionElimination)
        .add(constant_fold::ConstantFold::default())
        .add(dce::DeadCodeElimination);
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::op::{OpKind, UnaryKind};
    use gc_tensor::{DataType, TensorDesc};

    struct NopPass;
    impl Pass for NopPass {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&self, _g: &mut Graph) -> Result<bool> {
            Ok(false)
        }
    }

    #[test]
    fn manager_reports_no_change() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let y = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        g.mark_output(y);
        let mut pm = PassManager::new();
        pm.add(NopPass);
        assert!(!pm.run(&mut g).unwrap());
        pm.run_to_fixpoint(&mut g, 5).unwrap();
    }
}
