//! Coarse-grain fusion: merge multiple Fused OPs under one parallel
//! loop nest.
//!
//! "Multiple Fused ops could be lowered to one parallel loop, in order
//! to improve data locality or better exploit the parallelism. For
//! example, the outermost 'mpi' loop of two fused ops may have the same
//! blocking factor, so that they can be merged as one loop."
//!
//! This pass only *decides and marks* merge groups; the mechanical loop
//! merge happens in Tensor IR, "as guided by the Graph IR
//! optimizations".

use crate::error::Result;
use crate::graph::Graph;
use crate::passes::fusion::Partitioning;

/// Merge groups over the main partitions of a [`Partitioning`]: each
/// group is a run of partition indices lowered into one parallel loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoarseGroups {
    /// Groups in execution order; singleton groups are unmerged parts.
    pub groups: Vec<Vec<usize>>,
}

impl CoarseGroups {
    /// The group containing partition `part`.
    pub fn group_of(&self, part: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&part))
    }

    /// Number of merged groups with more than one member.
    pub fn merged_count(&self) -> usize {
        self.groups.iter().filter(|g| g.len() > 1).count()
    }
}

/// Rows processed by a partition's parallel loop: the product of every
/// output dimension except the last (M, or batch·heads·M for batched
/// matmuls).
fn parallel_rows(g: &Graph, parts: &Partitioning, idx: usize) -> Option<usize> {
    let p = &parts.parts[idx];
    p.tunable?;
    let out = p.output(g);
    let shape = g.desc(out).shape();
    if shape.len() < 2 {
        return None;
    }
    Some(shape[..shape.len() - 1].iter().product())
}

/// Decide coarse-fusion groups.
///
/// Two adjacent partitions merge when (a) both are Tunable-anchored,
/// (b) the first one's unique output feeds the second's lhs operand
/// (directly or through its fused pre-ops), and (c) their parallel row
/// counts match, so the heuristic can pick identical outer blocking
/// factors.
///
/// # Errors
///
/// Propagates graph traversal errors.
pub fn coarse_fuse(g: &Graph, parts: &Partitioning, enabled: bool) -> Result<CoarseGroups> {
    let n = parts.parts.len();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for i in 0..n {
        if current.is_empty() {
            current.push(i);
            continue;
        }
        let prev = *current.last().unwrap();
        if enabled && mergeable(g, parts, prev, i) {
            current.push(i);
        } else {
            groups.push(std::mem::take(&mut current));
            current.push(i);
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    Ok(CoarseGroups { groups })
}

fn mergeable(g: &Graph, parts: &Partitioning, a: usize, b: usize) -> bool {
    let (pa, pb) = (&parts.parts[a], &parts.parts[b]);
    if pa.tunable.is_none() || pb.tunable.is_none() {
        return false;
    }
    let (Some(rows_a), Some(rows_b)) = (parallel_rows(g, parts, a), parallel_rows(g, parts, b))
    else {
        return false;
    };
    if rows_a != rows_b {
        return false;
    }
    // b's lhs operand (or a fused pre-op's input) must be a's output
    let a_out = pa.output(g);
    let tb = g.op(pb.tunable.unwrap());
    let lhs = tb.inputs[0];
    if lhs == a_out {
        return true;
    }
    // through a pre-op (reorder/transpose) fused into b
    pb.pre_ops.iter().any(|&p| {
        let pop = g.op(p);
        pop.outputs.contains(&lhs) && pop.inputs.contains(&a_out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, UnaryKind};
    use crate::passes::fusion::{fuse, FusionOptions};
    use gc_tensor::{DataType, Tensor, TensorDesc};

    fn mlp3(m: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([m, 64], DataType::F32), "x");
        let w1 = g.add_constant(Tensor::random(&[64, 64], DataType::F32, 1), "w1");
        let w2 = g.add_constant(Tensor::random(&[64, 32], DataType::F32, 2), "w2");
        let w3 = g.add_constant(Tensor::random(&[32, 16], DataType::F32, 3), "w3");
        let mut t = x;
        for (i, w) in [w1, w2, w3].into_iter().enumerate() {
            let mm = g.add_op(OpKind::MatMul, &[t, w]).unwrap();
            t = g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm]).unwrap();
            if i == 2 {
                g.mark_output(t);
            }
        }
        g
    }

    #[test]
    fn mlp_merges_all_three_layers() {
        let g = mlp3(128);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.parts.len(), 3);
        let cg = coarse_fuse(&g, &parts, true).unwrap();
        assert_eq!(cg.groups, vec![vec![0, 1, 2]]);
        assert_eq!(cg.merged_count(), 1);
        assert_eq!(cg.group_of(1), Some(0));
    }

    #[test]
    fn disabled_gives_singletons() {
        let g = mlp3(128);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        let cg = coarse_fuse(&g, &parts, false).unwrap();
        assert_eq!(cg.groups.len(), 3);
        assert_eq!(cg.merged_count(), 0);
    }

    #[test]
    fn unconnected_matmuls_not_merged() {
        let mut g = Graph::new();
        let x1 = g.add_input(TensorDesc::new([32, 16], DataType::F32), "x1");
        let x2 = g.add_input(TensorDesc::new([32, 16], DataType::F32), "x2");
        let w = g.add_constant(Tensor::random(&[16, 16], DataType::F32, 1), "w");
        let a = g.add_op(OpKind::MatMul, &[x1, w]).unwrap();
        let b = g.add_op(OpKind::MatMul, &[x2, w]).unwrap();
        g.mark_output(a);
        g.mark_output(b);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        let cg = coarse_fuse(&g, &parts, true).unwrap();
        assert_eq!(cg.merged_count(), 0);
    }

    #[test]
    fn standalone_partition_breaks_chain() {
        // matmul -> transpose (standalone, not post-fusible since it's
        // the lhs of... actually make transpose a graph output user) ->
        // matmul with different rows
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([32, 16], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[16, 16], DataType::F32, 1), "w");
        let a = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(a); // a escapes -> relu can't fuse into it
        let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[a]).unwrap();
        let b = g.add_op(OpKind::MatMul, &[r, w]).unwrap();
        g.mark_output(b);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        // parts: [matmul a], [relu], [matmul b] -- relu breaks adjacency
        assert_eq!(parts.parts.len(), 3);
        let cg = coarse_fuse(&g, &parts, true).unwrap();
        assert_eq!(cg.merged_count(), 0);
    }

    #[test]
    fn batched_matmul_rows_include_batch() {
        let mut g = Graph::new();
        let q = g.add_input(TensorDesc::new([4, 16, 8], DataType::F32), "q");
        let kt = g.add_input(TensorDesc::new([4, 8, 16], DataType::F32), "kt");
        let v = g.add_input(TensorDesc::new([4, 16, 8], DataType::F32), "v");
        let s = g.add_op(OpKind::MatMul, &[q, kt]).unwrap();
        let p = g.add_op(OpKind::MatMul, &[s, v]).unwrap();
        g.mark_output(p);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        let cg = coarse_fuse(&g, &parts, true).unwrap();
        assert_eq!(cg.groups, vec![vec![0, 1]]);
    }
}
