//! Fine-grain fusion: group a Tunable OP with adjacent Fusible OPs into
//! a Fused OP.
//!
//! "The fine-grain fusion optimization grows a sequence of post-ops
//! using a simple heuristic to decide whether the fusion is profitable.
//! [...] The heuristic simply sets a limit of operations [...] the
//! heuristic fusion optimization also monitors the total additional
//! memory being accessed."
//!
//! The result is a [`Partitioning`]: every live Main-stage op belongs to
//! exactly one [`FusedOp`]; Init-stage ops (constant-weight
//! preprocessing) form their own single-op partitions executed once.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, LtId, OpId, Property};
use crate::op::{OpCategory, OpKind, Stage};
use std::collections::{HashMap, HashSet};

/// Limits for the fine-grain fusion heuristic.
#[derive(Debug, Clone, Copy)]
pub struct FusionOptions {
    /// Master switch; disabled leaves every op standalone.
    pub enabled: bool,
    /// Maximum fused post-ops per Tunable OP.
    pub max_post_ops: usize,
    /// Maximum reorder ops in the post-op sequence.
    pub max_reorders: usize,
    /// Maximum reduction ops in the post-op sequence (softmax needs 2:
    /// max and sum).
    pub max_reductions: usize,
    /// Cap on extra memory touched by post-op side operands, to bound
    /// interference with the Tunable OP's cache behaviour.
    pub max_extra_operand_bytes: usize,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions {
            enabled: true,
            max_post_ops: 12,
            max_reorders: 1,
            max_reductions: 2,
            max_extra_operand_bytes: 8 << 20,
        }
    }
}

impl FusionOptions {
    /// Options with fusion switched off entirely.
    pub fn disabled() -> Self {
        FusionOptions {
            enabled: false,
            ..FusionOptions::default()
        }
    }
}

/// A group of ops lowered together through one template instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedOp {
    /// The Tunable op anchoring the group, if any.
    pub tunable: Option<OpId>,
    /// Data-movement ops fused before the microkernel (pre-ops).
    pub pre_ops: Vec<OpId>,
    /// Fusible ops fused after the k-reduction (post-ops), topo-sorted.
    pub post_ops: Vec<OpId>,
    /// Execution stage.
    pub stage: Stage,
}

impl FusedOp {
    /// All member ops in execution order.
    pub fn ops(&self) -> Vec<OpId> {
        let mut v = self.pre_ops.clone();
        v.extend(self.tunable);
        v.extend(self.post_ops.iter().copied());
        v
    }

    /// Whether this is a bare (unfused) single-op partition.
    pub fn is_standalone(&self) -> bool {
        self.pre_ops.is_empty() && self.post_ops.is_empty() && self.tunable.is_some()
            || (self.tunable.is_none() && self.pre_ops.len() + self.post_ops.len() == 1)
    }

    /// The unique escaping output tensor of the group.
    ///
    /// # Panics
    ///
    /// Panics if the group does not have exactly one escaping tensor
    /// (the fusion algorithm guarantees it does).
    pub fn output(&self, g: &Graph) -> LtId {
        let escapes = escaping_tensors(g, &self.ops());
        assert_eq!(
            escapes.len(),
            1,
            "fused op must have exactly one escaping tensor"
        );
        escapes[0]
    }

    /// External input tensors (read but not produced by the group).
    pub fn external_inputs(&self, g: &Graph) -> Vec<LtId> {
        let ops = self.ops();
        let produced: HashSet<LtId> = ops
            .iter()
            .flat_map(|&id| g.op(id).outputs.iter().copied())
            .collect();
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &id in &ops {
            for &i in &g.op(id).inputs {
                if !produced.contains(&i) && seen.insert(i) {
                    out.push(i);
                }
            }
        }
        out
    }
}

/// Tensors produced inside `ops` that are consumed outside or are graph
/// outputs.
fn escaping_tensors(g: &Graph, ops: &[OpId]) -> Vec<LtId> {
    let in_part: HashSet<OpId> = ops.iter().copied().collect();
    let mut escapes = Vec::new();
    for &id in ops {
        for &o in &g.op(id).outputs {
            let outside = g.consumers(o).iter().any(|c| !in_part.contains(c));
            if outside || g.outputs().contains(&o) {
                escapes.push(o);
            }
        }
    }
    escapes
}

/// The partitioning of a graph into fused ops.
#[derive(Debug, Clone, Default)]
pub struct Partitioning {
    /// Init-stage partitions (constant preprocessing, run once), in
    /// topological order.
    pub init_parts: Vec<FusedOp>,
    /// Main-stage partitions in topological (execution) order.
    pub parts: Vec<FusedOp>,
}

impl Partitioning {
    /// Index of the main partition containing `op`, if any.
    pub fn part_of(&self, op: OpId) -> Option<usize> {
        self.parts.iter().position(|p| p.ops().contains(&op))
    }
}

/// Whether `target` is reachable from any op in `from` by following
/// consumer edges.
fn reaches(g: &Graph, from: &HashSet<OpId>, target: OpId) -> bool {
    let mut stack: Vec<OpId> = from.iter().copied().collect();
    let mut seen: HashSet<OpId> = from.clone();
    while let Some(id) = stack.pop() {
        if id == target {
            return true;
        }
        for &o in &g.op(id).outputs {
            for c in g.consumers(o) {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
    }
    false
}

/// Run fine-grain fusion and return the partitioning.
///
/// # Errors
///
/// Returns an error if the graph is invalid (cycles, unknown ids).
pub fn fuse(g: &Graph, opts: &FusionOptions) -> Result<Partitioning> {
    let order = g.topo_order()?;
    let mut assigned: HashSet<OpId> = HashSet::new();
    let mut parts = Vec::new();
    let mut init_parts = Vec::new();

    // Init-stage ops: one partition each, in topo order.
    for &id in &order {
        if g.op(id).stage == Stage::Init {
            assigned.insert(id);
            init_parts.push(FusedOp {
                tunable: None,
                pre_ops: vec![id],
                post_ops: vec![],
                stage: Stage::Init,
            });
        }
    }

    if opts.enabled {
        for &id in &order {
            if assigned.contains(&id) || g.op(id).kind.category() != OpCategory::Tunable {
                continue;
            }
            let part = grow_partition(g, id, &assigned, opts)?;
            assigned.extend(part.ops());
            parts.push(part);
        }
    } else {
        for &id in &order {
            if assigned.contains(&id) || g.op(id).kind.category() != OpCategory::Tunable {
                continue;
            }
            assigned.insert(id);
            parts.push(FusedOp {
                tunable: Some(id),
                pre_ops: vec![],
                post_ops: vec![],
                stage: Stage::Main,
            });
        }
    }

    // Remaining Main-stage ops: standalone partitions.
    for &id in &order {
        if !assigned.contains(&id) {
            assigned.insert(id);
            parts.push(FusedOp {
                tunable: None,
                pre_ops: vec![],
                post_ops: vec![id],
                stage: Stage::Main,
            });
        }
    }

    // Order main partitions by their *data dependencies*: a partition
    // may absorb a post-op whose side operand is produced by a textually
    // later partition (e.g. add(matmul1, matmul2)), so sorting by op
    // index is not enough.
    let produced_by: HashMap<LtId, usize> = parts
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            p.ops()
                .into_iter()
                .flat_map(|o| g.op(o).outputs.clone())
                .map(move |t| (t, pi))
        })
        .collect();
    let n = parts.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pi, p) in parts.iter().enumerate() {
        for inp in p.external_inputs(g) {
            if let Some(&src) = produced_by.get(&inp) {
                if src != pi {
                    indegree[pi] += 1;
                    dependents[src].push(pi);
                }
            }
        }
    }
    // Kahn's algorithm, preferring lower original index for stability.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order_idx = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        order_idx.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push(std::cmp::Reverse(d));
            }
        }
    }
    if order_idx.len() != n {
        return Err(GraphError::Pass {
            pass: "fusion".to_string(),
            message: "partition dependency cycle".to_string(),
        });
    }
    let mut slots: Vec<Option<FusedOp>> = parts.into_iter().map(Some).collect();
    let parts: Vec<FusedOp> = order_idx
        .into_iter()
        .map(|i| slots[i].take().expect("each partition placed once"))
        .collect();
    let _ = order;

    Ok(Partitioning { init_parts, parts })
}

fn grow_partition(
    g: &Graph,
    tunable: OpId,
    globally_assigned: &HashSet<OpId>,
    opts: &FusionOptions,
) -> Result<Partitioning1> {
    let mut in_part: HashSet<OpId> = HashSet::new();
    in_part.insert(tunable);

    // ---- pre-ops: immediate data-movement producers of the tunable's
    // inputs, single-consumer, Main stage.
    let mut pre_ops = Vec::new();
    for &inp in &g.op(tunable).inputs {
        if let Some(p) = g.producer(inp) {
            let pop = g.op(p);
            let movement = matches!(pop.kind, OpKind::Reorder { .. } | OpKind::Transpose);
            if movement
                && pop.stage == Stage::Main
                && !globally_assigned.contains(&p)
                && g.consumers(inp).len() == 1
                && !g.outputs().contains(&inp)
            {
                pre_ops.push(p);
                in_part.insert(p);
            }
        }
    }

    // ---- post-ops: greedy closure.
    let mut post_ops: Vec<OpId> = Vec::new();
    let mut produced: HashSet<LtId> = g.op(tunable).outputs.iter().copied().collect();
    for &p in &pre_ops {
        produced.extend(g.op(p).outputs.iter().copied());
    }
    let mut n_reorders = 0usize;
    let mut n_reductions = 0usize;
    let mut extra_bytes = 0usize;
    let order = g.topo_order()?;

    'grow: loop {
        for &cand in &order {
            if in_part.contains(&cand) || globally_assigned.contains(&cand) {
                continue;
            }
            let op = g.op(cand);
            if op.stage != Stage::Main || op.kind.category() != OpCategory::Fusible {
                continue;
            }
            // must consume something we produce
            if !op.inputs.iter().any(|i| produced.contains(i)) {
                continue;
            }
            // limits
            if post_ops.len() + 1 > opts.max_post_ops {
                break 'grow;
            }
            let is_reorder = matches!(op.kind, OpKind::Reorder { .. } | OpKind::Transpose);
            let is_reduction = matches!(op.kind, OpKind::Reduce(_));
            if is_reorder && n_reorders + 1 > opts.max_reorders {
                continue;
            }
            if is_reduction && n_reductions + 1 > opts.max_reductions {
                continue;
            }
            // every external input must be computable before this fused
            // op runs (its producer must not depend on us)
            let mut cand_extra = 0usize;
            let mut ok = true;
            for &i in &op.inputs {
                if produced.contains(&i) {
                    continue;
                }
                if let Some(p) = g.producer(i) {
                    if reaches(g, &in_part, p) {
                        ok = false;
                        break;
                    }
                }
                if g.tensor(i).property != Property::Constant {
                    cand_extra += g.desc(i).size_bytes();
                }
            }
            if !ok {
                continue;
            }
            if extra_bytes + cand_extra > opts.max_extra_operand_bytes {
                continue;
            }
            // absorb
            in_part.insert(cand);
            post_ops.push(cand);
            produced.extend(op.outputs.iter().copied());
            n_reorders += usize::from(is_reorder);
            n_reductions += usize::from(is_reduction);
            extra_bytes += cand_extra;
            continue 'grow;
        }
        break;
    }

    // ---- enforce the single-escape invariant by rolling back.
    loop {
        let mut all_ops = pre_ops.clone();
        all_ops.push(tunable);
        all_ops.extend(post_ops.iter().copied());
        let escapes = escaping_tensors(g, &all_ops);
        if escapes.len() <= 1 {
            break;
        }
        let dropped = post_ops.pop().ok_or_else(|| GraphError::Pass {
            pass: "fusion".to_string(),
            message: "tunable op with multiple escaping outputs".to_string(),
        })?;
        in_part.remove(&dropped);
    }

    Ok(FusedOp {
        tunable: Some(tunable),
        pre_ops,
        post_ops,
        stage: Stage::Main,
    })
}

// `grow_partition` returns a FusedOp; alias kept for readability above.
type Partitioning1 = FusedOp;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, UnaryKind};
    use crate::passes::decompose::Decompose;
    use crate::passes::Pass;
    use gc_tensor::{DataType, Tensor, TensorDesc};

    fn mlp_graph() -> (Graph, LtId) {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([32, 64], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[64, 32], DataType::F32, 1), "w");
        let b = g.add_constant(Tensor::random(&[32], DataType::F32, 2), "b");
        let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let add = g.add_op(OpKind::Binary(BinaryKind::Add), &[mm, b]).unwrap();
        let relu = g.add_op(OpKind::Unary(UnaryKind::Relu), &[add]).unwrap();
        g.mark_output(relu);
        (g, relu)
    }

    #[test]
    fn fuses_matmul_bias_relu() {
        let (g, out) = mlp_graph();
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.parts.len(), 1);
        let p = &parts.parts[0];
        assert!(p.tunable.is_some());
        assert_eq!(p.post_ops.len(), 2);
        assert_eq!(p.output(&g), out);
    }

    #[test]
    fn disabled_fusion_leaves_ops_standalone() {
        let (g, _) = mlp_graph();
        let parts = fuse(&g, &FusionOptions::disabled()).unwrap();
        assert_eq!(parts.parts.len(), 3);
    }

    #[test]
    fn post_op_limit_respected() {
        let (g, _) = mlp_graph();
        let opts = FusionOptions {
            max_post_ops: 1,
            ..FusionOptions::default()
        };
        let parts = fuse(&g, &opts).unwrap();
        // matmul+add fused, relu standalone
        assert_eq!(parts.parts.len(), 2);
        assert_eq!(parts.parts[0].post_ops.len(), 1);
    }

    #[test]
    fn softmax_chain_fully_fused_into_matmul() {
        // the MHA pattern: matmul -> softmax (decomposed)
        let mut g = Graph::new();
        let q = g.add_input(TensorDesc::new([2, 16, 16], DataType::F32), "q");
        let k = g.add_input(TensorDesc::new([2, 16, 16], DataType::F32), "k");
        let s = g.add_op(OpKind::MatMul, &[q, k]).unwrap();
        let sm = g.add_op(OpKind::Softmax, &[s]).unwrap();
        g.mark_output(sm);
        Decompose.run(&mut g).unwrap();
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.parts.len(), 1, "{:?}", parts.parts);
        let p = &parts.parts[0];
        // 5 decomposed softmax ops all fused as post-ops
        assert_eq!(p.post_ops.len(), 5);
        let reductions = p
            .post_ops
            .iter()
            .filter(|&&o| matches!(g.op(o).kind, OpKind::Reduce(_)))
            .count();
        assert_eq!(reductions, 2);
    }

    #[test]
    fn reduction_limit_blocks_softmax() {
        let mut g = Graph::new();
        let q = g.add_input(TensorDesc::new([2, 16, 16], DataType::F32), "q");
        let k = g.add_input(TensorDesc::new([2, 16, 16], DataType::F32), "k");
        let s = g.add_op(OpKind::MatMul, &[q, k]).unwrap();
        let sm = g.add_op(OpKind::Softmax, &[s]).unwrap();
        g.mark_output(sm);
        Decompose.run(&mut g).unwrap();
        let opts = FusionOptions {
            max_reductions: 0,
            ..FusionOptions::default()
        };
        let parts = fuse(&g, &opts).unwrap();
        // matmul alone (escape invariant rolls dependent eltwise back
        // too), softmax ops standalone
        assert!(parts.parts.len() > 1);
        assert!(parts.parts[0].post_ops.is_empty());
    }

    #[test]
    fn init_ops_form_init_partitions() {
        let mut g = Graph::new();
        let w = g.add_constant(Tensor::random(&[16, 16], DataType::F32, 3), "w");
        let wr = g
            .add_op(
                OpKind::Reorder {
                    target: gc_tensor::Layout::blocked_b(2, 4, 4),
                },
                &[w],
            )
            .unwrap();
        let x = g.add_input(TensorDesc::new([16, 16], DataType::F32), "x");
        let mm = g.add_op(OpKind::MatMul, &[x, wr]).unwrap();
        g.mark_output(mm);
        crate::passes::constant_weight::ConstantWeight
            .run(&mut g)
            .unwrap();
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.init_parts.len(), 1);
        assert_eq!(parts.parts.len(), 1);
        assert_eq!(parts.init_parts[0].stage, Stage::Init);
    }

    #[test]
    fn pre_op_reorder_absorbed() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([16, 16], DataType::F32), "x");
        let xr = g
            .add_op(
                OpKind::Reorder {
                    target: gc_tensor::Layout::blocked_a(2, 4, 4),
                },
                &[x],
            )
            .unwrap();
        let w = g.add_constant(Tensor::random(&[16, 16], DataType::F32, 4), "w");
        let mm = g.add_op(OpKind::MatMul, &[xr, w]).unwrap();
        g.mark_output(mm);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.parts.len(), 1);
        assert_eq!(parts.parts[0].pre_ops.len(), 1);
    }

    #[test]
    fn external_operand_counts_against_budget() {
        // binary add with a big variable mask tensor
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([32, 64], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[64, 32], DataType::F32, 1), "w");
        let mask = g.add_input(TensorDesc::new([32, 32], DataType::F32), "mask");
        let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let add = g
            .add_op(OpKind::Binary(BinaryKind::Add), &[mm, mask])
            .unwrap();
        g.mark_output(add);
        // budget too small: add not fused
        let opts = FusionOptions {
            max_extra_operand_bytes: 64,
            ..FusionOptions::default()
        };
        let parts = fuse(&g, &opts).unwrap();
        assert_eq!(parts.parts.len(), 2);
        // default budget: fused
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.parts.len(), 1);
    }

    #[test]
    fn external_inputs_listed_once() {
        let (g, _) = mlp_graph();
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        let ins = parts.parts[0].external_inputs(&g);
        assert_eq!(ins.len(), 3); // x, w, bias
    }

    #[test]
    fn two_matmul_chain_gives_two_parts() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([32, 64], DataType::F32), "x");
        let w1 = g.add_constant(Tensor::random(&[64, 32], DataType::F32, 1), "w1");
        let w2 = g.add_constant(Tensor::random(&[32, 16], DataType::F32, 2), "w2");
        let m1 = g.add_op(OpKind::MatMul, &[x, w1]).unwrap();
        let r1 = g.add_op(OpKind::Unary(UnaryKind::Relu), &[m1]).unwrap();
        let m2 = g.add_op(OpKind::MatMul, &[r1, w2]).unwrap();
        g.mark_output(m2);
        let parts = fuse(&g, &FusionOptions::default()).unwrap();
        assert_eq!(parts.parts.len(), 2);
        // relu went to the first matmul as a post-op
        assert_eq!(parts.parts[0].post_ops.len(), 1);
        assert!(parts.parts[1].post_ops.is_empty());
    }
}
