//! Low-precision conversion.
//!
//! Transforms the framework's quantized pattern
//!
//! ```text
//! C = Quantize(Dequantize(A, a_s, a_z) x_f32 Dequantize(B, b_s), c_s, c_z)
//! ```
//!
//! into a mathematically equivalent form whose matmul runs in int8:
//!
//! ```text
//! C = (A x_int8 B  *  (a_s * b_s)  +  compensation) * c_s + c_z
//! ```
//!
//! The rewrite replaces `matmul(dequant(A), dequant(B))` with a
//! [`OpKind::QuantizedMatMul`] consuming the int8 tensors directly; the
//! compensation term (`a_z · 1 x B · b_s`) is materialized by the
//! lowering's constant-weight init function, and any surrounding
//! `Quantize` stays behind as a Fusible op for post-op fusion.

use crate::error::Result;
use crate::graph::Graph;
use crate::op::OpKind;
use crate::passes::Pass;

/// The low-precision conversion pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct LowPrecision;

impl Pass for LowPrecision {
    fn name(&self) -> &'static str {
        "low-precision"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        let mut changed = false;
        let ids: Vec<_> = g.live_ops().collect();
        for id in ids {
            let op = g.op(id).clone();
            if op.kind != OpKind::MatMul {
                continue;
            }
            let (a_dq, b_dq) = (g.producer(op.inputs[0]), g.producer(op.inputs[1]));
            let (Some(a_dq), Some(b_dq)) = (a_dq, b_dq) else {
                continue;
            };
            let OpKind::Dequantize { params: a_params } = g.op(a_dq).kind else {
                continue;
            };
            let OpKind::Dequantize { params: b_params } = g.op(b_dq).kind else {
                continue;
            };
            let a_q = g.op(a_dq).inputs[0];
            let b_q = g.op(b_dq).inputs[0];
            // Activations must be u8, weights i8 (the int8 kernel's
            // contract); anything else stays in f32.
            if g.desc(a_q).dtype() != gc_tensor::DataType::U8
                || g.desc(b_q).dtype() != gc_tensor::DataType::I8
            {
                continue;
            }
            let qmm = g.add_op(
                OpKind::QuantizedMatMul {
                    a_params,
                    b_scale: b_params.scale,
                    out_params: None,
                },
                &[a_q, b_q],
            )?;
            g.replace_uses(op.outputs[0], qmm);
            g.kill_op(id);
            // dequantize ops die via DCE if now unused
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::dce::DeadCodeElimination;
    use gc_tensor::{DataType, QuantParams, Tensor, TensorDesc};

    fn quantized_matmul_graph() -> (Graph, crate::graph::LtId) {
        let mut g = Graph::new();
        let a = g.add_input(TensorDesc::new([4, 8], DataType::U8), "a_q");
        let b = g.add_constant(Tensor::random(&[8, 4], DataType::I8, 1), "b_q");
        let a_f = g
            .add_op(
                OpKind::Dequantize {
                    params: QuantParams::new(0.1, 3),
                },
                &[a],
            )
            .unwrap();
        let b_f = g
            .add_op(
                OpKind::Dequantize {
                    params: QuantParams::symmetric(0.2),
                },
                &[b],
            )
            .unwrap();
        let c = g.add_op(OpKind::MatMul, &[a_f, b_f]).unwrap();
        let q = g
            .add_op(
                OpKind::Quantize {
                    dtype: DataType::U8,
                    params: QuantParams::new(0.05, 10),
                },
                &[c],
            )
            .unwrap();
        g.mark_output(q);
        (g, q)
    }

    #[test]
    fn rewrites_dq_matmul_to_int8() {
        let (mut g, q) = quantized_matmul_graph();
        assert!(LowPrecision.run(&mut g).unwrap());
        DeadCodeElimination.run(&mut g).unwrap();
        g.validate().unwrap();
        // remaining: qmatmul + quantize
        let kinds: Vec<_> = g.live_ops().map(|i| g.op(i).kind.clone()).collect();
        assert_eq!(kinds.len(), 2);
        assert!(kinds
            .iter()
            .any(|k| matches!(k, OpKind::QuantizedMatMul { .. })));
        assert!(kinds.iter().any(|k| matches!(k, OpKind::Quantize { .. })));
        // the quantize consumes the qmatmul's f32 output
        let qop = g.producer(q).unwrap();
        let qin = g.op(qop).inputs[0];
        assert_eq!(g.desc(qin).dtype(), DataType::F32);
        // and the qmatmul consumes the int8 tensors directly
        let mm = g.producer(qin).unwrap();
        let OpKind::QuantizedMatMul {
            a_params, b_scale, ..
        } = g.op(mm).kind
        else {
            panic!("expected qmatmul")
        };
        assert_eq!(a_params.zero_point, 3);
        assert_eq!(b_scale, 0.2);
    }

    #[test]
    fn leaves_f32_matmul_alone() {
        let mut g = Graph::new();
        let a = g.add_input(TensorDesc::new([4, 8], DataType::F32), "a");
        let b = g.add_input(TensorDesc::new([8, 4], DataType::F32), "b");
        let c = g.add_op(OpKind::MatMul, &[a, b]).unwrap();
        g.mark_output(c);
        assert!(!LowPrecision.run(&mut g).unwrap());
    }

    #[test]
    fn requires_dequantize_on_both_sides() {
        let mut g = Graph::new();
        let a = g.add_input(TensorDesc::new([4, 8], DataType::U8), "a_q");
        let b = g.add_input(TensorDesc::new([8, 4], DataType::F32), "b");
        let a_f = g
            .add_op(
                OpKind::Dequantize {
                    params: QuantParams::new(0.1, 0),
                },
                &[a],
            )
            .unwrap();
        let c = g.add_op(OpKind::MatMul, &[a_f, b]).unwrap();
        g.mark_output(c);
        assert!(!LowPrecision.run(&mut g).unwrap());
    }

    #[test]
    fn rejects_i8_activations() {
        let mut g = Graph::new();
        let a = g.add_input(TensorDesc::new([4, 8], DataType::I8), "a_q");
        let b = g.add_constant(Tensor::random(&[8, 4], DataType::I8, 1), "b_q");
        let a_f = g
            .add_op(
                OpKind::Dequantize {
                    params: QuantParams::new(0.1, 0),
                },
                &[a],
            )
            .unwrap();
        let b_f = g
            .add_op(
                OpKind::Dequantize {
                    params: QuantParams::symmetric(0.2),
                },
                &[b],
            )
            .unwrap();
        let c = g.add_op(OpKind::MatMul, &[a_f, b_f]).unwrap();
        g.mark_output(c);
        assert!(!LowPrecision.run(&mut g).unwrap());
    }
}
