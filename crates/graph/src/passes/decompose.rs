//! Decomposition of complex OPs into basic DNN OPs.
//!
//! "The decomposition of complex DNN operations simplifies the Graph IR
//! optimization module so it only needs to handle basic DNN operations."
//!
//! - `softmax(x)` → `div(exp(sub(x, reduce_max(x))), reduce_sum(exp))`
//!   (numerically-stable form; the two reductions become the split
//!   post-op groups during fine-grain fusion);
//! - `bias_add(x, b)` → `add(x, b)` (broadcast binary);
//! - `kv_append(cache, row, onehot)` →
//!   `sub(cache, mul(sub(cache, row), onehot))`: away from the write
//!   slot the one-hot zeroes the correction and the cache passes
//!   through; at the slot `c - (c - r)` leaves `r`. Bit-exact when the
//!   slot held zeros, which is the serving invariant;
//! - `decode_attention(q, k, v, mask)` →
//!   `matmul(softmax(add(div(matmul(q, transpose(k)), √D), mask)), v)`
//!   — the encoder MHA chain at query length 1, so the existing
//!   softmax/matmul lowering (and int8 legalization) applies unchanged;
//! - `batchnorm_inference(x, γ, β, μ, σ²)` → `add(mul(x, s), t)` with
//!   `s = γ/√(σ²+ε)`, `t = β − μ·s` computed at compile time (inference
//!   stats are compile-time constants).

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::op::{BinaryKind, OpKind, ReduceKind, UnaryKind};
use crate::passes::Pass;
use gc_tensor::Tensor;

/// The complex-op decomposition pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct Decompose;

impl Pass for Decompose {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        let mut changed = false;
        // Iterate over a snapshot of ids: rewrites append new ops.
        let ids: Vec<_> = g.live_ops().collect();
        for id in ids {
            let op = g.op(id).clone();
            match op.kind {
                OpKind::Softmax => {
                    let x = op.inputs[0];
                    let out = op.outputs[0];
                    let mx = g.add_op(OpKind::Reduce(ReduceKind::Max), &[x])?;
                    let sh = g.add_op(OpKind::Binary(BinaryKind::Sub), &[x, mx])?;
                    let ex = g.add_op(OpKind::Unary(UnaryKind::Exp), &[sh])?;
                    let sm = g.add_op(OpKind::Reduce(ReduceKind::Sum), &[ex])?;
                    let dv = g.add_op(OpKind::Binary(BinaryKind::Div), &[ex, sm])?;
                    g.replace_uses(out, dv);
                    g.kill_op(id);
                    changed = true;
                }
                OpKind::KvAppend => {
                    let [cache, row, onehot] = [op.inputs[0], op.inputs[1], op.inputs[2]];
                    // row broadcasts right-aligned over [B, C, D];
                    // onehot broadcasts over the trailing D axis.
                    let diff = g.add_op(OpKind::Binary(BinaryKind::Sub), &[cache, row])?;
                    let corr = g.add_op(OpKind::Binary(BinaryKind::Mul), &[diff, onehot])?;
                    let upd = g.add_op(OpKind::Binary(BinaryKind::Sub), &[cache, corr])?;
                    g.replace_uses(op.outputs[0], upd);
                    g.kill_op(id);
                    changed = true;
                }
                OpKind::DecodeAttention => {
                    let [q, k, v, mask] = [op.inputs[0], op.inputs[1], op.inputs[2], op.inputs[3]];
                    let head_dim = *g.desc(q).shape().last().expect("rank-3 query") as f32;
                    let scale = g.add_constant(Tensor::scalar_f32(head_dim.sqrt()), "sqrt_d");
                    let kt = g.add_op(OpKind::Transpose, &[k])?;
                    let scores = g.add_op(OpKind::MatMul, &[q, kt])?;
                    let scaled = g.add_op(OpKind::Binary(BinaryKind::Div), &[scores, scale])?;
                    let masked = g.add_op(OpKind::Binary(BinaryKind::Add), &[scaled, mask])?;
                    // Softmax is itself complex; the pass manager runs
                    // decomposition to fixpoint, so it expands on the
                    // next iteration.
                    let probs = g.add_op(OpKind::Softmax, &[masked])?;
                    let out = g.add_op(OpKind::MatMul, &[probs, v])?;
                    g.replace_uses(op.outputs[0], out);
                    g.kill_op(id);
                    changed = true;
                }
                OpKind::BiasAdd => {
                    let add = g.add_op(
                        OpKind::Binary(BinaryKind::Add),
                        &[op.inputs[0], op.inputs[1]],
                    )?;
                    g.replace_uses(op.outputs[0], add);
                    g.kill_op(id);
                    changed = true;
                }
                OpKind::BatchNormInference { epsilon } => {
                    let [x, gamma, beta, mean, var] = [
                        op.inputs[0],
                        op.inputs[1],
                        op.inputs[2],
                        op.inputs[3],
                        op.inputs[4],
                    ];
                    let (gv, bv, mv, vv) = match (
                        g.const_value(gamma),
                        g.const_value(beta),
                        g.const_value(mean),
                        g.const_value(var),
                    ) {
                        (Some(a), Some(b), Some(c), Some(d)) => {
                            (a.clone(), b.clone(), c.clone(), d.clone())
                        }
                        _ => {
                            return Err(GraphError::Pass {
                                pass: "decompose".to_string(),
                                message: "batchnorm inference requires constant statistics"
                                    .to_string(),
                            })
                        }
                    };
                    let gs = gv.f32_slice()?;
                    let bs = bv.f32_slice()?;
                    let ms = mv.f32_slice()?;
                    let vs = vv.f32_slice()?;
                    let scale: Vec<f32> = gs
                        .iter()
                        .zip(vs)
                        .map(|(&gm, &v)| gm / (v + epsilon).sqrt())
                        .collect();
                    let shift: Vec<f32> = bs
                        .iter()
                        .zip(ms.iter().zip(&scale))
                        .map(|(&b, (&m, &s))| b - m * s)
                        .collect();
                    let c = scale.len();
                    let s_id = g.add_constant(Tensor::from_vec_f32(&[c], scale)?, "bn_scale");
                    let t_id = g.add_constant(Tensor::from_vec_f32(&[c], shift)?, "bn_shift");
                    let mul = g.add_op(OpKind::Binary(BinaryKind::Mul), &[x, s_id])?;
                    let add = g.add_op(OpKind::Binary(BinaryKind::Add), &[mul, t_id])?;
                    g.replace_uses(op.outputs[0], add);
                    g.kill_op(id);
                    changed = true;
                }
                _ => {}
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpCategory;
    use gc_tensor::{DataType, TensorDesc};

    #[test]
    fn softmax_decomposes_to_basic_ops() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2, 4], DataType::F32), "x");
        let y = g.add_op(OpKind::Softmax, &[x]).unwrap();
        g.mark_output(y);
        assert!(Decompose.run(&mut g).unwrap());
        g.validate().unwrap();
        for id in g.live_ops() {
            assert_ne!(g.op(id).kind.category(), OpCategory::Complex);
        }
        assert_eq!(g.live_ops().count(), 5);
        // graph output now points at the div
        let out = g.outputs()[0];
        let p = g.producer(out).unwrap();
        assert_eq!(g.op(p).kind, OpKind::Binary(BinaryKind::Div));
    }

    #[test]
    fn decomposed_softmax_matches_reference() {
        use gc_tensor::reference;
        // Evaluate the decomposed chain by hand on a small tensor.
        let t = Tensor::random(&[3, 5], DataType::F32, 42);
        let mx = reference::reduce_last_axis(reference::ReduceKind::Max, &t).unwrap();
        let sh = reference::binary(reference::BinaryKind::Sub, &t, &mx).unwrap();
        let ex = reference::exp(&sh).unwrap();
        let sm = reference::reduce_last_axis(reference::ReduceKind::Sum, &ex).unwrap();
        let dv = reference::binary(reference::BinaryKind::Div, &ex, &sm).unwrap();
        let want = reference::softmax_last_axis(&t).unwrap();
        assert!(dv.allclose(&want, 1e-6));
    }

    #[test]
    fn bias_add_becomes_binary() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2, 4], DataType::F32), "x");
        let b = g.add_constant(Tensor::random(&[4], DataType::F32, 1), "b");
        let y = g.add_op(OpKind::BiasAdd, &[x, b]).unwrap();
        g.mark_output(y);
        assert!(Decompose.run(&mut g).unwrap());
        let out = g.outputs()[0];
        assert_eq!(
            g.op(g.producer(out).unwrap()).kind,
            OpKind::Binary(BinaryKind::Add)
        );
    }

    #[test]
    fn batchnorm_folds_to_scale_shift() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2, 3], DataType::F32), "x");
        let gamma = g.add_constant(
            Tensor::from_vec_f32(&[3], vec![1.0, 2.0, 3.0]).unwrap(),
            "g",
        );
        let beta = g.add_constant(
            Tensor::from_vec_f32(&[3], vec![0.5, 0.0, -0.5]).unwrap(),
            "b",
        );
        let mean = g.add_constant(
            Tensor::from_vec_f32(&[3], vec![0.1, 0.2, 0.3]).unwrap(),
            "m",
        );
        let var = g.add_constant(
            Tensor::from_vec_f32(&[3], vec![1.0, 1.0, 4.0]).unwrap(),
            "v",
        );
        let y = g
            .add_op(
                OpKind::BatchNormInference { epsilon: 0.0 },
                &[x, gamma, beta, mean, var],
            )
            .unwrap();
        g.mark_output(y);
        assert!(Decompose.run(&mut g).unwrap());
        g.validate().unwrap();
        // mul then add
        let out = g.outputs()[0];
        let add = g.producer(out).unwrap();
        assert_eq!(g.op(add).kind, OpKind::Binary(BinaryKind::Add));
        // check folded scale: gamma / sqrt(var) = [1, 2, 1.5]
        let mul = g.producer(g.op(add).inputs[0]).unwrap();
        let s_id = g.op(mul).inputs[1];
        let s = g.const_value(s_id).unwrap().f32_slice().unwrap().to_vec();
        assert_eq!(s, vec![1.0, 2.0, 1.5]);
    }

    #[test]
    fn batchnorm_without_constants_errors() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2, 3], DataType::F32), "x");
        let v = g.add_input(TensorDesc::new([3], DataType::F32), "stats");
        let y = g
            .add_op(
                OpKind::BatchNormInference { epsilon: 1e-5 },
                &[x, v, v, v, v],
            )
            .unwrap();
        g.mark_output(y);
        assert!(Decompose.run(&mut g).is_err());
    }

    #[test]
    fn idempotent_on_basic_graphs() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2, 4], DataType::F32), "x");
        let y = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        g.mark_output(y);
        assert!(!Decompose.run(&mut g).unwrap());
    }
}
