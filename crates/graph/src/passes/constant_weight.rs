//! Constant-weight preprocessing: runtime-constant propagation and
//! init-stage marking.
//!
//! "The optimization propagates and marks all the runtime constants
//! throughout the graph. Later the lowering generates special code for
//! runtime constants, to make sure these runtime constants only be
//! executed once in the first execution, and all future execution will
//! reuse the processed result."
//!
//! An op whose inputs are all constant produces a constant; such ops are
//! moved to the `Init` stage and the engine runs them once, caching the
//! results (the "processed weight").

use crate::error::Result;
use crate::graph::{Graph, Property};
use crate::op::Stage;
use crate::passes::Pass;

/// The constant-weight preprocessing pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstantWeight;

impl Pass for ConstantWeight {
    fn name(&self) -> &'static str {
        "constant-weight"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        let order = g.topo_order()?;
        let mut changed = false;
        for id in order {
            let op = g.op(id);
            let all_const = op
                .inputs
                .iter()
                .all(|&i| g.tensor(i).property == Property::Constant);
            if !all_const {
                continue;
            }
            let outs = op.outputs.clone();
            for o in outs {
                if g.tensor(o).property != Property::Constant {
                    g.tensor_mut(o).property = Property::Constant;
                    changed = true;
                }
            }
            if g.op(id).stage != Stage::Init {
                g.op_mut(id).stage = Stage::Init;
                changed = true;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, UnaryKind};
    use gc_tensor::{DataType, Layout, Tensor, TensorDesc};

    #[test]
    fn propagates_through_chains() {
        let mut g = Graph::new();
        let w = g.add_constant(Tensor::random(&[8, 8], DataType::F32, 1), "w");
        let r = g
            .add_op(
                OpKind::Reorder {
                    target: Layout::blocked_b(2, 4, 4),
                },
                &[w],
            )
            .unwrap();
        let x = g.add_input(TensorDesc::new([8, 8], DataType::F32), "x");
        // matmul takes a variable input, so its output stays variable.
        // (reorder of a blocked weight is exactly the paper's prepack)
        let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(mm);
        g.mark_output(r);
        assert!(ConstantWeight.run(&mut g).unwrap());
        assert_eq!(g.tensor(r).property, Property::Constant);
        assert_eq!(g.op(g.producer(r).unwrap()).stage, Stage::Init);
        assert_eq!(g.tensor(mm).property, Property::Variable);
        assert_eq!(g.op(g.producer(mm).unwrap()).stage, Stage::Main);
    }

    #[test]
    fn runtime_constant_without_value_propagates() {
        let mut g = Graph::new();
        let w = g.add_runtime_constant(TensorDesc::new([4], DataType::F32), "w");
        let s = g.add_op(OpKind::Unary(UnaryKind::Square), &[w]).unwrap();
        g.mark_output(s);
        assert!(ConstantWeight.run(&mut g).unwrap());
        assert_eq!(g.tensor(s).property, Property::Constant);
    }

    #[test]
    fn idempotent() {
        let mut g = Graph::new();
        let w = g.add_constant(Tensor::random(&[4], DataType::F32, 2), "w");
        let s = g.add_op(OpKind::Unary(UnaryKind::Square), &[w]).unwrap();
        g.mark_output(s);
        assert!(ConstantWeight.run(&mut g).unwrap());
        assert!(!ConstantWeight.run(&mut g).unwrap());
    }

    #[test]
    fn variable_only_graph_unchanged() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4], DataType::F32), "x");
        let y = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        g.mark_output(y);
        assert!(!ConstantWeight.run(&mut g).unwrap());
    }
}
