//! Common subexpression elimination: merge live ops with identical
//! kinds and inputs.

use crate::error::Result;
use crate::graph::Graph;
use crate::op::Stage;
use crate::passes::Pass;

/// The CSE pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct CommonSubexpressionElimination;

impl Pass for CommonSubexpressionElimination {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        let order = g.topo_order()?;
        let mut changed = false;
        // Quadratic scan is fine at DNN-graph sizes; OpKind carries f32
        // attributes so a hash key is not straightforwardly available.
        let mut seen: Vec<crate::graph::OpId> = Vec::new();
        for id in order {
            let op = g.op(id).clone();
            if op.stage == Stage::Init {
                // init-stage ops are scheduled separately; don't merge
                // across stages
            }
            let dup = seen.iter().copied().find(|&s| {
                let so = g.op(s);
                so.kind == op.kind && so.inputs == op.inputs && so.stage == op.stage
            });
            if let Some(prev) = dup {
                let keep = g.op(prev).outputs[0];
                let drop = op.outputs[0];
                g.replace_uses(drop, keep);
                g.kill_op(id);
                changed = true;
            } else {
                seen.push(id);
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, OpKind, UnaryKind};
    use gc_tensor::{DataType, TensorDesc};

    #[test]
    fn merges_identical_ops() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let a = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let b = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let c = g.add_op(OpKind::Binary(BinaryKind::Add), &[a, b]).unwrap();
        g.mark_output(c);
        assert!(CommonSubexpressionElimination.run(&mut g).unwrap());
        g.validate().unwrap();
        assert_eq!(g.live_ops().count(), 2);
        // both add inputs now point at the same tensor
        let add = g.producer(c).unwrap();
        let ins = &g.op(add).inputs;
        assert_eq!(ins[0], ins[1]);
    }

    #[test]
    fn distinct_kinds_not_merged() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let a = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let b = g.add_op(OpKind::Unary(UnaryKind::Tanh), &[x]).unwrap();
        let c = g.add_op(OpKind::Binary(BinaryKind::Add), &[a, b]).unwrap();
        g.mark_output(c);
        assert!(!CommonSubexpressionElimination.run(&mut g).unwrap());
    }

    #[test]
    fn cascading_cse_via_fixpoint() {
        // exp(x) twice, then relu of each: one CSE run merges exps, a
        // second merges the relus.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let a = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let b = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let ra = g.add_op(OpKind::Unary(UnaryKind::Relu), &[a]).unwrap();
        let rb = g.add_op(OpKind::Unary(UnaryKind::Relu), &[b]).unwrap();
        let c = g
            .add_op(OpKind::Binary(BinaryKind::Add), &[ra, rb])
            .unwrap();
        g.mark_output(c);
        let pass = CommonSubexpressionElimination;
        assert!(pass.run(&mut g).unwrap());
        // single run already converges because we scan in topo order
        assert!(!pass.run(&mut g).unwrap());
        assert_eq!(g.live_ops().count(), 3);
    }
}
