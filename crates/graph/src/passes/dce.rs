//! Dead code elimination: remove ops whose results can never reach a
//! graph output.

use crate::error::Result;
use crate::graph::Graph;
use crate::passes::Pass;
use std::collections::HashSet;

/// The DCE pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeadCodeElimination;

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        // Walk backwards from outputs, marking live ops.
        let mut live_tensors: HashSet<_> = g.outputs().iter().copied().collect();
        let order = g.topo_order()?;
        let mut live_ops = HashSet::new();
        for &id in order.iter().rev() {
            let op = g.op(id);
            if op.outputs.iter().any(|o| live_tensors.contains(o)) {
                live_ops.insert(id);
                live_tensors.extend(op.inputs.iter().copied());
            }
        }
        let mut changed = false;
        for id in order {
            if !live_ops.contains(&id) {
                g.kill_op(id);
                changed = true;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, UnaryKind};
    use gc_tensor::{DataType, TensorDesc};

    #[test]
    fn removes_unused_chain() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let used = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        let dead1 = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let _dead2 = g.add_op(OpKind::Unary(UnaryKind::Tanh), &[dead1]).unwrap();
        g.mark_output(used);
        assert!(DeadCodeElimination.run(&mut g).unwrap());
        assert_eq!(g.live_ops().count(), 1);
    }

    #[test]
    fn keeps_transitive_dependencies() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let a = g.add_op(OpKind::Unary(UnaryKind::Exp), &[x]).unwrap();
        let b = g.add_op(OpKind::Unary(UnaryKind::Relu), &[a]).unwrap();
        g.mark_output(b);
        assert!(!DeadCodeElimination.run(&mut g).unwrap());
        assert_eq!(g.live_ops().count(), 2);
    }

    #[test]
    fn no_outputs_kills_everything() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let _ = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        assert!(DeadCodeElimination.run(&mut g).unwrap());
        assert_eq!(g.live_ops().count(), 0);
    }
}
