//! Tensor memory-layout propagation.
//!
//! "It allows the Tunable ops within a subgraph to use a blocked layout
//! but keep the graph input/output tensor as a plain layout. [...] it
//! inserts reorder operation between two Tunable OPs if they use
//! different blocked layouts."
//!
//! The pass queries each Tunable op for its preferred blocked layouts
//! through a [`LayoutOracle`] (implemented by the lowering heuristic so
//! that the propagated layouts match what the templates will use),
//! inserts `Reorder` ops where the current layout differs, and restores
//! plain layout at graph outputs.

use crate::error::Result;
use crate::graph::{Graph, OpId};
use crate::op::OpKind;
use crate::passes::Pass;
use gc_tensor::Layout;

/// Preferred operand layouts of a Tunable op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreferredLayouts {
    /// Layout for the activation (lhs) input.
    pub a: Layout,
    /// Layout for the weight (rhs) input.
    pub b: Layout,
    /// Layout of the output.
    pub out: Layout,
}

/// Supplies preferred layouts for Tunable ops. The production oracle is
/// the lowering heuristic; [`DefaultOracle`] gives standalone defaults.
pub trait LayoutOracle {
    /// Preferred layouts for op `id`, or `None` for non-tunable ops.
    fn preferred(&self, graph: &Graph, id: OpId) -> Option<PreferredLayouts>;
}

/// Largest divisor of `dim` that is `<= want` (the template block sizes
/// must divide the dimension; the paper pads instead, with the same
/// effect of handling ragged sizes like k=479 at reduced efficiency).
pub fn choose_block(dim: usize, want: usize) -> usize {
    let want = want.min(dim).max(1);
    (1..=want)
        .rev()
        .find(|b| dim.is_multiple_of(*b))
        .unwrap_or(1)
}

/// Default oracle: canonical blocked layouts with 32/64-ish blocks.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultOracle;

impl LayoutOracle for DefaultOracle {
    fn preferred(&self, graph: &Graph, id: OpId) -> Option<PreferredLayouts> {
        let op = graph.op(id);
        match op.kind {
            OpKind::MatMul | OpKind::QuantizedMatMul { .. } => {
                let a = graph.desc(op.inputs[0]);
                let b = graph.desc(op.inputs[1]);
                let rank = a.rank();
                let m = a.shape()[rank - 2];
                let k = a.shape()[rank - 1];
                let n = b.shape()[rank - 1];
                let mb = choose_block(m, 32);
                let kb = choose_block(k, 64);
                let nb = choose_block(n, 32);
                Some(PreferredLayouts {
                    a: Layout::blocked_a(rank, mb, kb),
                    b: Layout::blocked_b(rank, kb, nb),
                    out: Layout::blocked_a(rank, mb, nb),
                })
            }
            _ => None,
        }
    }
}

/// The layout-propagation pass.
pub struct LayoutPropagation<'a> {
    oracle: &'a dyn LayoutOracle,
}

impl<'a> LayoutPropagation<'a> {
    /// Create the pass with the given oracle.
    pub fn new(oracle: &'a dyn LayoutOracle) -> Self {
        LayoutPropagation { oracle }
    }
}

impl Pass for LayoutPropagation<'_> {
    fn name(&self) -> &'static str {
        "layout-propagation"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        let mut changed = false;
        let order = g.topo_order()?;
        for id in order {
            let Some(pref) = self.oracle.preferred(g, id) else {
                continue;
            };
            let op = g.op(id).clone();
            for (slot, want) in [(0usize, pref.a.clone()), (1usize, pref.b.clone())] {
                let cur = g.desc(op.inputs[slot]).layout().clone();
                if cur != want {
                    let r = g.add_op(
                        OpKind::Reorder {
                            target: want.clone(),
                        },
                        &[op.inputs[slot]],
                    )?;
                    g.op_mut(id).inputs[slot] = r;
                    changed = true;
                }
            }
            // The tunable op now produces its preferred blocked layout.
            let out = op.outputs[0];
            if g.desc(out).layout() != &pref.out {
                g.set_layout(out, pref.out.clone())?;
                changed = true;
            }
        }
        // Fusible ops inherit their input's layout (elementwise ops are
        // layout-agnostic); re-derive in topo order.
        let order = g.topo_order()?;
        for id in order {
            let op = g.op(id).clone();
            if matches!(
                op.kind,
                OpKind::Unary(_)
                    | OpKind::Binary(_)
                    | OpKind::Quantize { .. }
                    | OpKind::Dequantize { .. }
                    | OpKind::TypeCast { .. }
            ) {
                let in_layout = g.desc(op.inputs[0]).layout().clone();
                let out = op.outputs[0];
                if g.desc(out).layout() != &in_layout {
                    g.set_layout(out, in_layout)?;
                    changed = true;
                }
            }
        }
        // Restore plain layout at graph outputs.
        let outputs: Vec<_> = g.outputs().to_vec();
        for out in outputs {
            if !g.desc(out).layout().is_plain() {
                let r = g.add_op(
                    OpKind::Reorder {
                        target: Layout::Plain,
                    },
                    &[out],
                )?;
                // re-point the graph output only (consumers keep blocked)
                let pos = g.outputs().iter().position(|&o| o == out).unwrap();
                // Safe: mark new output then remove old.
                g.mark_output(r);
                let _ = pos;
                g.unmark_output(out);
                changed = true;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::UnaryKind;
    use gc_tensor::{DataType, Tensor, TensorDesc};

    #[test]
    fn choose_block_picks_divisors() {
        assert_eq!(choose_block(512, 32), 32);
        assert_eq!(choose_block(479, 64), 1); // prime
        assert_eq!(choose_block(13, 64), 13);
        assert_eq!(choose_block(48, 32), 24);
        assert_eq!(choose_block(1, 32), 1);
    }

    #[test]
    fn inserts_reorders_and_blocks_chain() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([64, 128], DataType::F32), "x");
        let w1 = g.add_constant(Tensor::random(&[128, 64], DataType::F32, 1), "w1");
        let w2 = g.add_constant(Tensor::random(&[64, 32], DataType::F32, 2), "w2");
        let y1 = g.add_op(OpKind::MatMul, &[x, w1]).unwrap();
        let r1 = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y1]).unwrap();
        let y2 = g.add_op(OpKind::MatMul, &[r1, w2]).unwrap();
        g.mark_output(y2);

        let oracle = DefaultOracle;
        assert!(LayoutPropagation::new(&oracle).run(&mut g).unwrap());
        g.validate().unwrap();

        // matmul outputs are blocked now
        assert!(g.desc(y1).layout().is_blocked());
        assert!(g.desc(y2).layout().is_blocked());
        // relu inherits blocked layout
        assert!(g.desc(r1).layout().is_blocked());
        // graph output is a plain reorder of y2
        let out = g.outputs()[0];
        assert!(g.desc(out).layout().is_plain());
        let p = g.producer(out).unwrap();
        assert!(matches!(g.op(p).kind, OpKind::Reorder { .. }));
        // inputs to the first matmul got reorder ops
        let mm1 = g.producer(y1).unwrap();
        for &i in &g.op(mm1).inputs {
            let p = g.producer(i).unwrap();
            assert!(matches!(g.op(p).kind, OpKind::Reorder { .. }));
        }
    }

    #[test]
    fn no_double_reorder_between_matching_matmuls() {
        // y1 is produced blocked as [mb, nb]; matmul2 wants its A input
        // blocked [mb, kb'] where kb' = choose_block(64, 64) = 64 !=
        // nb = 32, so one reorder IS needed between them. Use square
        // sizes so the layouts agree.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([32, 64], DataType::F32), "x");
        let w1 = g.add_constant(Tensor::random(&[64, 64], DataType::F32, 1), "w1");
        let w2 = g.add_constant(Tensor::random(&[64, 64], DataType::F32, 2), "w2");
        let y1 = g.add_op(OpKind::MatMul, &[x, w1]).unwrap();
        let y2 = g.add_op(OpKind::MatMul, &[y1, w2]).unwrap();
        g.mark_output(y2);
        let oracle = DefaultOracle;
        LayoutPropagation::new(&oracle).run(&mut g).unwrap();
        // y1: out blocked [mb=32, nb=32]; matmul2 wants a: [mb=32, kb=64]
        // -> differs, reorder inserted. This documents the behaviour the
        // *real* oracle avoids by aligning neighbour layouts.
        let mm2 = g.producer(y2).unwrap();
        let a_in = g.op(mm2).inputs[0];
        let prod = g.producer(a_in).unwrap();
        assert!(matches!(g.op(prod).kind, OpKind::Reorder { .. }));
    }

    #[test]
    fn idempotent_once_propagated() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([32, 64], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[64, 32], DataType::F32, 1), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(y);
        let oracle = DefaultOracle;
        assert!(LayoutPropagation::new(&oracle).run(&mut g).unwrap());
        assert!(!LayoutPropagation::new(&oracle).run(&mut g).unwrap());
    }
}
