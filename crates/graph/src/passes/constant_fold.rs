//! Constant folding: evaluate ops whose inputs are all compile-time
//! constants with bound values.
//!
//! Per the paper, quantization scales and zero points "can be folded in
//! the compile-time"; large weight preprocessing is deliberately left to
//! the runtime init stage (constant-weight preprocessing), so folding is
//! bounded by an output-size threshold.

use crate::error::Result;
use crate::graph::Graph;
use crate::op::OpKind;
use crate::passes::Pass;
use gc_tensor::{reference, DataType, Storage, Tensor, TensorDesc};

/// The constant-folding pass.
#[derive(Debug, Clone, Copy)]
pub struct ConstantFold {
    /// Maximum output elements an op may have to be folded at compile
    /// time; larger results are left for the runtime init stage.
    pub max_elems: usize,
}

impl Default for ConstantFold {
    fn default() -> Self {
        // scales, zero points, compensation rows — not whole weights
        ConstantFold { max_elems: 1 << 16 }
    }
}

impl ConstantFold {
    /// Fold everything regardless of size (used by tests and the init
    /// stage executor).
    pub fn unbounded() -> Self {
        ConstantFold {
            max_elems: usize::MAX,
        }
    }
}

impl Pass for ConstantFold {
    fn name(&self) -> &'static str {
        "constant-fold"
    }

    fn run(&self, g: &mut Graph) -> Result<bool> {
        let mut changed = false;
        let order = g.topo_order()?;
        for id in order {
            let op = g.op(id).clone();
            let out = op.outputs[0];
            if g.desc(out).volume() > self.max_elems {
                continue;
            }
            let vals: Option<Vec<Tensor>> = op
                .inputs
                .iter()
                .map(|&i| g.const_value(i).cloned())
                .collect();
            let Some(vals) = vals else { continue };
            let Some(result) = eval_op(&op.kind, &vals)? else {
                continue;
            };
            g.bind_const(out, result);
            g.kill_op(id);
            changed = true;
        }
        Ok(changed)
    }
}

/// Evaluate one op on constant inputs using the reference library.
/// Returns `Ok(None)` for kinds folding does not support.
pub(crate) fn eval_op(kind: &OpKind, vals: &[Tensor]) -> Result<Option<Tensor>> {
    let r = match kind {
        OpKind::MatMul => Some(reference::matmul_f32(&vals[0], &vals[1])?),
        OpKind::Unary(u) => {
            use crate::op::UnaryKind as U;
            let f = match u {
                U::Relu => reference::relu,
                U::Gelu => reference::gelu,
                U::Sigmoid => reference::sigmoid,
                U::Tanh => reference::tanh,
                U::Exp => reference::exp,
                U::Square => |t: &Tensor| reference::binary(reference::BinaryKind::Mul, t, t),
                U::Neg => |t: &Tensor| {
                    let v: Vec<f32> = t.f32_slice()?.iter().map(|&x| -x).collect();
                    Tensor::from_vec_f32(t.desc().shape(), v)
                },
                U::Identity => |t: &Tensor| Ok(t.clone()),
            };
            Some(f(&vals[0])?)
        }
        OpKind::Binary(b) => {
            use crate::op::BinaryKind as B;
            let k = match b {
                B::Add => reference::BinaryKind::Add,
                B::Sub => reference::BinaryKind::Sub,
                B::Mul => reference::BinaryKind::Mul,
                B::Div => reference::BinaryKind::Div,
                B::Max => reference::BinaryKind::Max,
                B::Min => reference::BinaryKind::Min,
            };
            Some(reference::binary(k, &vals[0], &vals[1])?)
        }
        OpKind::Reduce(rk) => {
            use crate::op::ReduceKind as R;
            let k = match rk {
                R::Sum => reference::ReduceKind::Sum,
                R::Max => reference::ReduceKind::Max,
            };
            Some(reference::reduce_last_axis(k, &vals[0])?)
        }
        OpKind::Transpose => Some(gc_tensor::reorder::transpose_last2(&vals[0])?),
        OpKind::Reorder { target } => Some(gc_tensor::reorder::reorder(&vals[0], target.clone())?),
        OpKind::Quantize { dtype, params } => Some(reference::quantize(&vals[0], *dtype, *params)?),
        OpKind::Dequantize { params } => Some(reference::dequantize(&vals[0], *params)?),
        OpKind::TypeCast { to } => Some(cast(&vals[0], *to)?),
        _ => None,
    };
    Ok(r)
}

fn cast(t: &Tensor, to: DataType) -> gc_tensor::Result<Tensor> {
    let n = t.desc().volume();
    let desc = TensorDesc::new(t.desc().shape(), to);
    let storage = match to {
        DataType::F32 => Storage::F32((0..n).map(|i| t.storage().get_as_f64(i) as f32).collect()),
        DataType::I32 => Storage::I32((0..n).map(|i| t.storage().get_as_f64(i) as i32).collect()),
        DataType::I64 => Storage::I64((0..n).map(|i| t.storage().get_as_f64(i) as i64).collect()),
        DataType::U8 => Storage::U8(
            (0..n)
                .map(|i| t.storage().get_as_f64(i).clamp(0.0, 255.0) as u8)
                .collect(),
        ),
        DataType::I8 => Storage::I8(
            (0..n)
                .map(|i| t.storage().get_as_f64(i).clamp(-128.0, 127.0) as i8)
                .collect(),
        ),
        DataType::Bf16 => Storage::Bf16(
            (0..n)
                .map(|i| gc_tensor::f32_to_bf16_bits(t.storage().get_as_f64(i) as f32))
                .collect(),
        ),
    };
    Tensor::from_parts(desc, storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, UnaryKind};
    use crate::passes::Pass;

    #[test]
    fn folds_scalar_scale_computation() {
        // a_s * b_s as the low-precision pass would leave behind
        let mut g = Graph::new();
        let a = g.add_constant(Tensor::scalar_f32(0.5), "a_s");
        let b = g.add_constant(Tensor::scalar_f32(0.25), "b_s");
        let m = g.add_op(OpKind::Binary(BinaryKind::Mul), &[a, b]).unwrap();
        g.mark_output(m);
        assert!(ConstantFold::default().run(&mut g).unwrap());
        assert_eq!(g.live_ops().count(), 0);
        let v = g.const_value(m).unwrap();
        assert_eq!(v.f32_slice().unwrap(), &[0.125]);
    }

    #[test]
    fn respects_size_threshold() {
        let mut g = Graph::new();
        let w = g.add_constant(Tensor::random(&[64, 64], DataType::F32, 1), "w");
        let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[w]).unwrap();
        g.mark_output(r);
        let pass = ConstantFold { max_elems: 16 };
        assert!(!pass.run(&mut g).unwrap());
        assert!(ConstantFold::unbounded().run(&mut g).unwrap());
    }

    #[test]
    fn does_not_fold_with_variable_inputs() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2], DataType::F32), "x");
        let y = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        g.mark_output(y);
        assert!(!ConstantFold::default().run(&mut g).unwrap());
    }

    #[test]
    fn folds_chains_in_one_run() {
        let mut g = Graph::new();
        let a = g.add_constant(Tensor::from_vec_f32(&[2], vec![1.0, -2.0]).unwrap(), "a");
        let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[a]).unwrap();
        let e = g.add_op(OpKind::Unary(UnaryKind::Neg), &[r]).unwrap();
        g.mark_output(e);
        assert!(ConstantFold::default().run(&mut g).unwrap());
        assert_eq!(g.live_ops().count(), 0);
        assert_eq!(g.const_value(e).unwrap().f32_slice().unwrap(), &[-1.0, 0.0]);
    }

    #[test]
    fn folds_quantize_roundtrip() {
        let mut g = Graph::new();
        let a = g.add_constant(Tensor::from_vec_f32(&[2], vec![0.5, 1.0]).unwrap(), "a");
        let q = g
            .add_op(
                OpKind::Quantize {
                    dtype: DataType::U8,
                    params: gc_tensor::QuantParams::new(0.5, 0),
                },
                &[a],
            )
            .unwrap();
        g.mark_output(q);
        assert!(ConstantFold::default().run(&mut g).unwrap());
        assert_eq!(g.const_value(q).unwrap().u8_slice().unwrap(), &[1, 2]);
    }

    #[test]
    fn cast_helper_covers_types() {
        let t = Tensor::from_vec_f32(&[3], vec![-1.5, 0.0, 300.0]).unwrap();
        let u = cast(&t, DataType::U8).unwrap();
        assert_eq!(u.u8_slice().unwrap(), &[0, 0, 255]);
        let i = cast(&t, DataType::I32).unwrap();
        assert_eq!(i.i32_slice().unwrap(), &[-1, 0, 300]);
    }
}
