//! Primitives-library baseline for the oneDNN Graph Compiler
//! reproduction.
//!
//! The paper's baseline "uses expert-tuned oneDNN primitive with fusion
//! support and has been integrated into multiple DL frameworks". This
//! crate reproduces that comparator's capability envelope:
//!
//! - **has**: matmul *post-op attribute* fusion (a short chain of
//!   eltwise / binary / quantize ops folded into the primitive), weight
//!   prepacking into the blocked layout, int8 compensation, low-precision
//!   mapping, primitive result caching (init stage);
//! - **lacks**: softmax/reduction fusion into the preceding batch
//!   matmul, coarse-grain fusion across primitives, layout propagation
//!   (every primitive consumes and produces plain tensors), cross-op
//!   buffer planning — and it pays one framework dispatch per primitive.
//!
//! Its kernels come from a fixed menu of mature blockings
//! ([`gc_lowering::heuristic::choose_params_library`]) instead of the
//! compiler's free parameter search.
//!
//! # Examples
//!
//! ```
//! use gc_baseline::{Baseline, BaselineOptions};
//! use gc_graph::{Graph, OpKind, UnaryKind};
//! use gc_machine::MachineDescriptor;
//! use gc_tensor::{DataType, Tensor, TensorDesc};
//!
//! let mut g = Graph::new();
//! let x = g.add_input(TensorDesc::new([16, 32], DataType::F32), "x");
//! let w = g.add_constant(Tensor::random(&[32, 8], DataType::F32, 7), "w");
//! let y = g.add_op(OpKind::MatMul, &[x, w])?;
//! let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y])?;
//! g.mark_output(z);
//!
//! let mut opts = BaselineOptions::new(MachineDescriptor::xeon_8358());
//! opts.threads = Some(1);
//! let exe = Baseline::new(opts).build(g)?;
//! let (outs, _) = exe.execute(&[Tensor::random(&[16, 32], DataType::F32, 1)])?;
//! assert_eq!(outs[0].desc().volume(), 128);
//! # Ok::<(), gc_core::CoreError>(())
//! ```

#![warn(missing_docs)]

use gc_core::{pipeline, CompileOptions, CoreError};
use gc_graph::{FusionOptions, Graph};
use gc_machine::MachineDescriptor;
use gc_runtime::{ExecStats, ThreadPool};
use gc_tensor::Tensor;
use gc_tir::engine::Executable;
use gc_tir::sim::Projection;
use std::sync::Arc;

/// Options for the baseline library executor.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Target machine model.
    pub machine: MachineDescriptor,
    /// Worker threads (None = host parallelism).
    pub threads: Option<usize>,
    /// Maximum post-ops a primitive attribute accepts (oneDNN-style).
    pub max_primitive_post_ops: usize,
}

impl BaselineOptions {
    /// Defaults for a machine.
    pub fn new(machine: MachineDescriptor) -> Self {
        BaselineOptions {
            machine,
            threads: None,
            max_primitive_post_ops: 3,
        }
    }
}

/// The primitives-library baseline "framework".
#[derive(Debug, Clone)]
pub struct Baseline {
    options: BaselineOptions,
}

impl Baseline {
    /// Create a baseline executor factory.
    pub fn new(options: BaselineOptions) -> Self {
        Baseline { options }
    }

    /// Build an op-by-op execution plan for `graph`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid graphs or unsupported patterns.
    pub fn build(&self, mut graph: Graph) -> Result<BaselineExecutable, CoreError> {
        // Same framework-level graph preparation the paper describes:
        // decompose, low-precision mapping, constant marking.
        let prep = CompileOptions {
            machine: self.options.machine.clone(),
            ..CompileOptions::default()
        };
        pipeline::optimize_graph(&mut graph, &prep)?;
        let input_descs: Vec<gc_tensor::TensorDesc> = graph
            .inputs()
            .iter()
            .map(|&i| graph.desc(i).clone())
            .collect();

        // Primitive formation: matmul + short post-op chain; no
        // reductions, no reorders, no softmax fusion.
        let part_opts = CompileOptions {
            machine: self.options.machine.clone(),
            fusion: FusionOptions {
                enabled: true,
                max_post_ops: self.options.max_primitive_post_ops,
                max_reductions: 0,
                max_reorders: 0,
                ..FusionOptions::default()
            },
            coarse_fusion: false,
            propagate_layouts: false,
            reuse_buffers: false,
            library_params: true,
            ..CompileOptions::default()
        };
        let (parts, groups) = pipeline::partition_graph(&graph, &part_opts)?;
        let (lowered, _report) = pipeline::lower(&graph, &parts, &groups, &part_opts)?;
        let dispatch_count = lowered.module.main_calls.len();
        let pool = Arc::new(match self.options.threads {
            Some(n) => ThreadPool::new(n),
            None => ThreadPool::with_host_parallelism(),
        });
        let exe = Executable::new(lowered.module, lowered.weight_seeds, pool, dispatch_count);
        Ok(BaselineExecutable {
            exe,
            machine: self.options.machine.clone(),
            primitives: parts.parts.len(),
            input_descs,
        })
    }
}

/// An op-by-op baseline execution plan.
#[derive(Debug)]
pub struct BaselineExecutable {
    exe: Executable,
    machine: MachineDescriptor,
    primitives: usize,
    input_descs: Vec<gc_tensor::TensorDesc>,
}

impl BaselineExecutable {
    /// Execute on `inputs` (graph-input order).
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch.
    pub fn execute(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, ExecStats), CoreError> {
        for (i, (t, want)) in inputs.iter().zip(&self.input_descs).enumerate() {
            if t.desc().shape() != want.shape() {
                return Err(CoreError::Exec(gc_tir::exec::ExecError(format!(
                    "input {i} expects shape {:?}, got {:?}",
                    want.shape(),
                    t.desc().shape()
                ))));
            }
        }
        Ok(self.exe.execute(inputs)?)
    }

    /// Project one steady-state execution (per-primitive dispatch costs
    /// included) on the target machine.
    pub fn project(&self) -> Projection {
        self.exe.project(&self.machine)
    }

    /// Number of primitives executed per run (= framework API calls).
    pub fn primitive_count(&self) -> usize {
        self.primitives
    }

    /// The underlying executable.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }
}
