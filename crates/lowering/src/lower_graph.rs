//! Lowering a partitioned Graph IR into a Tensor IR module.
//!
//! This is where the Graph IR decisions (fusion membership, coarse
//! groups, constant-weight staging) meet the templates:
//!
//! - every Tunable partition is lowered through the matmul template with
//!   heuristic parameters;
//! - **layout negotiation** realizes layout propagation: a matmul chain
//!   keeps intermediate activations in blocked layout by constraining
//!   the consumer's `KB`/`MB` to the producer's `NB`/`MB`;
//! - constant weights get synthesized *init functions* (prepack into the
//!   blocked weight layout, int8 compensation) producing persistent
//!   globals, run once at first execution;
//! - coarse-fusion groups are lowered into a single function whose
//!   adjacent parallel loops the Tensor IR merge pass then fuses;
//! - everything else lowers through the standalone op lowering.

use crate::heuristic::{choose_params, Constraints};
use crate::params::MatmulProblem;
use crate::standalone::{binary_op, lower_reorder, lower_standalone, unary_op};
use crate::template::{
    lower_matmul, AInput, BInput, Int8Spec, MatmulSpec, OutLayout, ParamRole, PostOpSpec,
};
use gc_graph::{CoarseGroups, FusedOp, Graph, LtId, OpKind, Partitioning, Property, ReduceKind};
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, Layout, Tensor};
use gc_tir::passes::{
    check_func_reuse, check_module_reuse, merge_parallel_loops, reuse_func_locals,
    reuse_module_scratch, shrink_locals, validate_func, validate_module,
};
use gc_tir::{
    BufDecl, BufId, Call, Expr, Func, GlobalDecl, GlobalKind, Intrinsic, Module, Stmt, View,
};
use std::collections::HashMap;
use std::fmt;

/// Error produced during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

fn err(msg: impl Into<String>) -> LowerError {
    LowerError(msg.into())
}

/// Options controlling lowering (the ablation knobs).
#[derive(Debug, Clone)]
pub struct LowerOptions {
    /// Target machine (drives every heuristic).
    pub machine: MachineDescriptor,
    /// Merge the parallel loops of coarse-fusion groups (the paper's
    /// coarse-grain fusion; groups still share one function when off,
    /// but loops stay separate).
    pub merge_coarse_groups: bool,
    /// Keep intermediate activations blocked between chained matmuls
    /// (layout propagation).
    pub propagate_layouts: bool,
    /// Run the tensor-size optimization.
    pub shrink_tensors: bool,
    /// Run module-level scratch-buffer reuse.
    pub reuse_buffers: bool,
    /// Run function-local buffer merging (the within-function half of
    /// memory-buffer reuse).
    pub reuse_locals: bool,
    /// Run the Tensor IR validator after every optimization pass; a
    /// failed check aborts lowering with an error naming the pass that
    /// broke the module.
    pub validate: bool,
    /// Force the post-op anchor (ablation).
    pub forced_post_anchor: Option<crate::anchors::PostOpAnchor>,
    /// Force the A-pack placement (ablation).
    pub forced_pack: Option<crate::anchors::PackPlacement>,
    /// Choose template parameters from the primitives library's fixed
    /// kernel menu instead of the compiler heuristic (baseline mode).
    pub library_params: bool,
    /// Allow the k-slicing template variant: when a matmul's
    /// `M_blocks × N_blocks` decomposition underfills the thread pool,
    /// the heuristic may split the reduction across `KPN` extra workers
    /// (per-slice partial accumulators, parallel reduction + fused
    /// epilogue). Off = always the plain single-phase template.
    pub k_slice: bool,
    /// Skip the analytic merge-profitability gate and merge every
    /// multi-member coarse group unconditionally (ablation: measures
    /// what the merged path would cost where the cost model prefers
    /// split schedules).
    pub force_coarse_merge: bool,
    /// Allow ragged (non-divisor) tile sizes for blocked-weight matmuls:
    /// edge tiles are zero-padded at pack time (K/N, and M under
    /// [`crate::EdgePolicy::Pad`]) or clamped by tail kernels (M under
    /// [`crate::EdgePolicy::Tail`]). Off = the heuristic only considers
    /// exact divisors of each dimension (ablation: degenerate blocking
    /// on prime dims).
    pub ragged: bool,
    /// Measured-tuning overrides: exact `(problem, constraints)` pairs
    /// whose parameters replace the analytic choice. Overrides that
    /// fail [`crate::MatmulParams::validate`] for their problem are ignored
    /// (the analytic choice stands), so a stale database can never
    /// produce an unlowereable plan.
    pub overrides: crate::heuristic::ParamOverrides,
    /// When set, every parameter decision (problem, constraints, chosen
    /// params — after overrides) is appended here. The tuning
    /// orchestrator reads the log to learn which decisions a graph
    /// actually exercises; keys recorded here are exactly the keys
    /// `overrides` is consulted with.
    pub param_log: Option<crate::heuristic::ParamLog>,
}

impl LowerOptions {
    /// Defaults for a machine: everything enabled.
    pub fn new(machine: MachineDescriptor) -> Self {
        LowerOptions {
            machine,
            merge_coarse_groups: true,
            propagate_layouts: true,
            shrink_tensors: true,
            reuse_buffers: true,
            reuse_locals: true,
            validate: true,
            forced_post_anchor: None,
            forced_pack: None,
            library_params: false,
            k_slice: true,
            force_coarse_merge: false,
            ragged: true,
            overrides: crate::heuristic::ParamOverrides::default(),
            param_log: None,
        }
    }
}

/// Result of lowering: the module plus the data the engine needs to
/// seed weight globals.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The compiled Tensor IR module.
    pub module: Module,
    /// Initial contents of `Weight` globals (plain weights and constant
    /// operands), by global index.
    pub weight_seeds: Vec<(usize, Tensor)>,
    /// Number of merged coarse groups (diagnostics).
    pub merged_groups: usize,
    /// Number of tunable partitions whose chosen params tile some axis
    /// raggedly (pack-time padding / edge tiles in play). Lets the
    /// pipeline's projection gate know a divisor-only re-lowering could
    /// produce a different plan worth comparing.
    pub ragged_partitions: usize,
}

struct Builder<'g> {
    graph: &'g Graph,
    opts: &'g LowerOptions,
    module: Module,
    global_of: HashMap<LtId, usize>,
    weight_seeds: Vec<(usize, Tensor)>,
    /// memoized prepacked weights: (weight ltid, kb, nb) -> persistent
    prepacked: HashMap<(LtId, usize, usize), usize>,
    /// memoized compensation vectors: (weight ltid, kb, nb) -> persistent
    comps: HashMap<(LtId, usize, usize), usize>,
}

/// Per-part lowering decisions.
#[derive(Debug, Clone)]
struct PartPlan {
    spec: MatmulSpec,
    /// LtId bound to each template param role (None for synthesized
    /// comp / prepacked-weight params).
    binds: Vec<Bind>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bind {
    Tensor(LtId),
    PrepackedWeight(LtId),
    Comp(LtId),
}

/// Lower a partitioned graph.
///
/// # Errors
///
/// Returns an error for graphs using unsupported shapes/patterns.
pub fn lower_partitions(
    graph: &Graph,
    parts: &Partitioning,
    groups: &CoarseGroups,
    opts: &LowerOptions,
) -> Result<Lowered, LowerError> {
    // a tensor that is simultaneously a graph input and a graph output
    // would need aliased Input/Output globals; reject it explicitly
    // rather than silently dropping the output
    if let Some(lt) = graph.outputs().iter().find(|o| graph.inputs().contains(o)) {
        return Err(err(format!(
            "graph output t{} is also a graph input; insert an Identity op",
            lt.0
        )));
    }
    let mut b = Builder {
        graph,
        opts,
        module: Module::new(),
        global_of: HashMap::new(),
        weight_seeds: Vec::new(),
        prepacked: HashMap::new(),
        comps: HashMap::new(),
    };

    // -- graph-level init ops (constant-weight preprocessing the user's
    // graph already contains)
    for init in &parts.init_parts {
        b.lower_init_op(init)?;
    }

    // -- plan tunable parts (params + layout negotiation), in order.
    // Groups whose shared decomposition would be unprofitable are split
    // back into singletons first (the heuristic side of coarse fusion).
    let groups = {
        let mut out: Vec<Vec<usize>> = Vec::new();
        for group in &groups.groups {
            if group.len() > 1
                && !opts.force_coarse_merge
                && !group_profitable(&opts.machine, graph, parts, group, opts.k_slice)
            {
                out.extend(group.iter().map(|&pi| vec![pi]));
            } else {
                out.push(group.clone());
            }
        }
        gc_graph::CoarseGroups { groups: out }
    };
    let groups = &groups;
    let mut plans: HashMap<usize, PartPlan> = HashMap::new();
    for (gi, group) in groups.groups.iter().enumerate() {
        let grouped = group.len() > 1;
        let mut group_mb: Option<usize> = None;
        let mut group_tasks: Option<usize> = None;
        for (pos, &pi) in group.iter().enumerate() {
            let part = &parts.parts[pi];
            if part.tunable.is_none() {
                continue;
            }
            let prev = if pos > 0 {
                plans.get(&group[pos - 1])
            } else {
                None
            };
            let plan = b.plan_tunable(
                parts,
                pi,
                part,
                grouped,
                &mut group_mb,
                &mut group_tasks,
                prev,
                &plans,
            )?;
            plans.insert(pi, plan);
        }
        let _ = gi;
    }

    // -- mark producers whose consumers read blocked output
    // (done inside plan_tunable via `prev`); now fix each producer's
    // OutLayout if its single consumer plans to read it blocked.
    let mut blocked_outputs: HashMap<usize, (usize, usize)> = HashMap::new(); // part -> (mb, nb)
    for (&pi, plan) in &plans {
        if plan.spec.a_input == AInput::Blocked {
            // find producer part of the A tensor
            let a_lt = plan
                .binds
                .iter()
                .zip(&plan_roles(plan))
                .find_map(|(b_, r)| match (b_, r) {
                    (Bind::Tensor(lt), ParamRole::A) => Some(*lt),
                    _ => None,
                })
                .expect("A bind");
            if let Some(prod_op) = graph.producer(a_lt) {
                if let Some(ppi) = parts.part_of(prod_op) {
                    blocked_outputs.insert(ppi, (plan.spec.params.mb, plan.spec.params.kb));
                    let _ = pi;
                }
            }
        }
    }
    for (pi, (mb, kb)) in blocked_outputs {
        if let Some(plan) = plans.get_mut(&pi) {
            assert_eq!(plan.spec.params.mb, mb, "negotiated MB mismatch");
            assert_eq!(plan.spec.params.nb, kb, "negotiated NB mismatch");
            plan.spec.out = OutLayout::BlockedMbNb;
        }
    }

    let ragged_partitions = plans
        .values()
        .filter(|p| {
            let (prob, par) = (&p.spec.problem, &p.spec.params);
            par.ragged_m(prob.m) || par.ragged_n(prob.n) || par.ragged_k(prob.k)
        })
        .count();

    // -- lower main partitions group by group
    let mut merged_groups = 0usize;
    for group in &groups.groups {
        let all_tunable = group.iter().all(|pi| plans.contains_key(pi));
        if group.len() > 1 && all_tunable {
            merged_groups += 1;
            b.lower_group(parts, group, &plans)?;
        } else {
            for &pi in group {
                let part = &parts.parts[pi];
                if let Some(plan) = plans.get(&pi) {
                    b.lower_single_tunable(parts, pi, part, plan)?;
                } else {
                    b.lower_standalone_part(part)?;
                }
            }
        }
    }

    // -- Tensor IR optimizations. With `opts.validate` each pass is
    // followed by the validator, so a miscompile aborts lowering with
    // an error naming the guilty pass instead of producing a module
    // that silently computes garbage. The buffer-reuse passes
    // additionally get a before/after shadow check proving no read was
    // rewritten onto a slot whose live range it overlaps.
    for f in &mut b.module.funcs {
        if opts.shrink_tensors {
            let _ = shrink_locals(f);
            if opts.validate {
                validate_func(f).map_err(|e| {
                    err(format!(
                        "validator after shrink_locals in `{}`: {e}",
                        f.name
                    ))
                })?;
            }
        }
        if opts.reuse_locals {
            let before = if opts.validate { Some(f.clone()) } else { None };
            let _ = reuse_func_locals(f);
            if let Some(before) = before {
                check_func_reuse(&before, f)
                    .and_then(|()| validate_func(f))
                    .map_err(|e| {
                        err(format!(
                            "validator after reuse_func_locals in `{}`: {e}",
                            f.name
                        ))
                    })?;
            }
        }
    }
    if opts.reuse_buffers {
        let before = if opts.validate {
            Some(b.module.clone())
        } else {
            None
        };
        let _ = reuse_module_scratch(&mut b.module);
        if let Some(before) = before {
            check_module_reuse(&before, &b.module)
                .and_then(|()| validate_module(&b.module))
                .map_err(|e| err(format!("validator after reuse_module_scratch: {e}")))?;
        }
    }
    if opts.validate {
        validate_module(&b.module).map_err(|e| err(format!("validator after lowering: {e}")))?;
    }
    b.module
        .validate()
        .map_err(|e| err(format!("module validation: {e}")))?;

    Ok(Lowered {
        module: b.module,
        weight_seeds: b.weight_seeds,
        merged_groups,
        ragged_partitions,
    })
}

fn plan_roles(plan: &PartPlan) -> Vec<ParamRole> {
    // binds are stored parallel to the lowered roles; recompute roles
    // from the spec the same way lower_matmul does.
    let mut roles = vec![ParamRole::A, ParamRole::B];
    if plan.spec.int8.is_some() {
        roles.push(ParamRole::Comp);
    }
    if plan.spec.bias {
        roles.push(ParamRole::Bias);
    }
    for (i, po) in plan.spec.post_ops.iter().enumerate() {
        if po.takes_param() {
            roles.push(ParamRole::PostOperand(i));
        }
    }
    roles.push(ParamRole::Out);
    roles
}

impl Builder<'_> {
    fn desc(&self, lt: LtId) -> &gc_tensor::TensorDesc {
        self.graph.desc(lt)
    }

    fn global_for(&mut self, lt: LtId) -> usize {
        if let Some(&g) = self.global_of.get(&lt) {
            return g;
        }
        let t = self.graph.tensor(lt);
        let kind = if let Some(pos) = self.graph.inputs().iter().position(|&i| i == lt) {
            GlobalKind::Input(pos)
        } else if let Some(pos) = self.graph.outputs().iter().position(|&o| o == lt) {
            GlobalKind::Output(pos)
        } else if t.property == Property::Constant && self.graph.const_value(lt).is_some() {
            GlobalKind::Weight
        } else if t.property == Property::Constant {
            GlobalKind::Persistent
        } else {
            GlobalKind::Scratch
        };
        let g = self.module.add_global(GlobalDecl {
            dtype: t.desc.dtype(),
            elems: t.desc.volume(),
            kind,
            name: t.name.clone(),
        });
        if kind == GlobalKind::Weight {
            self.weight_seeds
                .push((g, self.graph.const_value(lt).unwrap().clone()));
        }
        self.global_of.insert(lt, g);
        g
    }

    /// Persistent blocked weight for `(w, kb, nb)`, creating the prepack
    /// init call on first use.
    fn prepacked_weight(&mut self, w: LtId, kb: usize, nb: usize) -> Result<usize, LowerError> {
        if let Some(&g) = self.prepacked.get(&(w, kb, nb)) {
            return Ok(g);
        }
        let desc = self.desc(w).clone();
        if !desc.layout().is_plain() {
            return Err(err("weights must arrive in plain layout"));
        }
        let plain_g = self.global_for(w);
        let layout = Layout::blocked_b(desc.rank(), kb, nb);
        let func = lower_reorder(&desc, &layout, &format!("prepack_w{}", w.0));
        // pack-time padding: the blocked buffer holds whole [KB, NB]
        // tiles even when the blocks do not divide K/N (pad is zero)
        let shape = desc.shape();
        let (k, n) = (shape[shape.len() - 2], shape[shape.len() - 1]);
        let wbatch = desc.volume() / (k * n);
        let padded = wbatch * k.div_ceil(kb) * kb * n.div_ceil(nb) * nb;
        let persistent = self.module.add_global(GlobalDecl {
            dtype: desc.dtype(),
            elems: padded,
            kind: GlobalKind::Persistent,
            name: format!("{}_blocked", self.graph.tensor(w).name),
        });
        let fi = self.module.add_func(func);
        self.module.init_calls.push(Call {
            func: fi,
            args: vec![plain_g, persistent],
        });
        self.prepacked.insert((w, kb, nb), persistent);
        Ok(persistent)
    }

    /// Persistent compensation vector for an int8 weight, from its
    /// prepacked blocked form.
    fn compensation(&mut self, w: LtId, kb: usize, nb: usize) -> Result<usize, LowerError> {
        if let Some(&g) = self.comps.get(&(w, kb, nb)) {
            return Ok(g);
        }
        let blocked = self.prepacked_weight(w, kb, nb)?;
        let desc = self.desc(w);
        let shape = desc.shape();
        let (k, n) = (shape[shape.len() - 2], shape[shape.len() - 1]);
        // sized to the padded weight: one i32 per packed column; pad
        // columns hold zero-weight sums, i.e. zero
        let (k_tiles, n_tiles) = (k.div_ceil(kb), n.div_ceil(nb));
        let n_pad = n_tiles * nb;
        let comp_g = self.module.add_global(GlobalDecl {
            dtype: DataType::I32,
            elems: n_pad,
            kind: GlobalKind::Persistent,
            name: format!("{}_comp", self.graph.tensor(w).name),
        });
        // comp[n] = sum_k B[k, n], computed from blocked tiles
        let mut f = Func {
            name: format!("comp_w{}", w.0),
            params: vec![
                BufDecl::new(DataType::I8, k_tiles * kb * n_pad, "wb"),
                BufDecl::new(DataType::I32, n_pad, "comp"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        let kt = f.fresh_var();
        let nt = f.fresh_var();
        f.body.push(Stmt::Op(Intrinsic::ZeroI32 {
            dst: View::new(BufId::Param(1), 0usize, n_pad),
        }));
        f.body.push(Stmt::loop_(
            kt,
            k_tiles,
            vec![Stmt::loop_(
                nt,
                n_tiles,
                vec![Stmt::Op(Intrinsic::CompAccumulate {
                    b_tile: View::new(
                        BufId::Param(0),
                        Expr::v(kt)
                            .mul(Expr::from(n_tiles))
                            .add(Expr::v(nt))
                            .mul(Expr::from(nb * kb)),
                        nb * kb,
                    ),
                    comp: View::new(BufId::Param(1), Expr::v(nt).mul(Expr::from(nb)), nb),
                    nb,
                    kb,
                })],
            )],
        ));
        let fi = self.module.add_func(f);
        self.module.init_calls.push(Call {
            func: fi,
            args: vec![blocked, comp_g],
        });
        self.comps.insert((w, kb, nb), comp_g);
        Ok(comp_g)
    }

    fn lower_init_op(&mut self, init: &FusedOp) -> Result<(), LowerError> {
        let op_id = init.pre_ops[0];
        let op = self.graph.op(op_id);
        let in_descs: Vec<_> = op.inputs.iter().map(|&i| self.graph.desc(i)).collect();
        let out = op.outputs[0];
        let func = lower_standalone(
            &op.kind,
            &in_descs,
            self.graph.desc(out),
            None,
            &format!("init_{}", op.kind.mnemonic()),
        );
        let n_params = func.params.len();
        let fi = self.module.add_func(func);
        let mut args: Vec<usize> = op.inputs.iter().map(|&i| self.global_for(i)).collect();
        args.push(self.global_for(out));
        if args.len() != n_params {
            return Err(err(format!(
                "init op {} arity mismatch",
                op.kind.mnemonic()
            )));
        }
        self.module.init_calls.push(Call { func: fi, args });
        Ok(())
    }

    /// Build the spec + binds for one tunable partition.
    #[allow(clippy::too_many_arguments)]
    fn plan_tunable(
        &mut self,
        parts: &Partitioning,
        _pi: usize,
        part: &FusedOp,
        grouped: bool,
        group_mb: &mut Option<usize>,
        group_tasks: &mut Option<usize>,
        prev_in_group: Option<&PartPlan>,
        all_plans: &HashMap<usize, PartPlan>,
    ) -> Result<PartPlan, LowerError> {
        let graph = self.graph;
        let machine = &self.opts.machine;
        let t_op = graph.op(part.tunable.unwrap());

        // --- operand sources, redirected through fused pre-ops
        let mut a_src = t_op.inputs[0];
        let mut b_src = t_op.inputs[1];
        let mut b_transposed = false;
        for &pre in &part.pre_ops {
            let p = graph.op(pre);
            let out = p.outputs[0];
            if out == a_src {
                match p.kind {
                    OpKind::Reorder { .. } => a_src = p.inputs[0],
                    _ => return Err(err("unsupported pre-op on activation")),
                }
            } else if out == b_src {
                match p.kind {
                    OpKind::Transpose => {
                        b_src = p.inputs[0];
                        b_transposed = true;
                    }
                    OpKind::Reorder { .. } => b_src = p.inputs[0],
                    _ => return Err(err("unsupported pre-op on rhs")),
                }
            }
        }

        // --- problem sizes
        let a_desc = graph.desc(a_src).clone();
        let out_lt = part.output(graph);
        let out_desc = graph.desc(out_lt).clone();
        let shape = out_desc.shape();
        let rank = shape.len();
        let (m, n) = (shape[rank - 2], shape[rank - 1]);
        let k = *a_desc.shape().last().unwrap();
        let batch: usize = shape[..rank - 2].iter().product();
        let (int8, elem_bytes) = match &t_op.kind {
            OpKind::MatMul => (None, 4),
            OpKind::QuantizedMatMul {
                a_params, b_scale, ..
            } => (
                Some(Int8Spec {
                    a_zero: a_params.zero_point,
                    scale: a_params.scale * b_scale,
                }),
                1,
            ),
            other => return Err(err(format!("{other} is not a tunable op"))),
        };
        let problem = MatmulProblem::batched(batch, m, n, k, elem_bytes);

        // --- post-op translation
        let mut post_ops = Vec::new();
        let mut produced: Vec<LtId> = vec![t_op.outputs[0]];
        let mut reduce_outputs: Vec<LtId> = Vec::new();
        let mut operand_binds: Vec<(usize, LtId)> = Vec::new();
        for &po_id in &part.post_ops {
            let po = graph.op(po_id);
            let idx = post_ops.len();
            match &po.kind {
                OpKind::Unary(u) => post_ops.push(PostOpSpec::Unary(unary_op(*u))),
                OpKind::Binary(bk) => {
                    let op = binary_op(*bk);
                    // identify the non-chain operand
                    let rhs = po
                        .inputs
                        .iter()
                        .copied()
                        .find(|i| !produced.contains(i))
                        .unwrap_or(po.inputs[1]);
                    if reduce_outputs.contains(&rhs) {
                        post_ops.push(PostOpSpec::BinaryColStat { op });
                    } else if let Some(v) = self.scalar_const(rhs) {
                        post_ops.push(PostOpSpec::BinaryScalarConst(op, v));
                    } else {
                        let rd = graph.desc(rhs);
                        if rd.volume() == n {
                            post_ops.push(PostOpSpec::BinaryRowVec {
                                op,
                                batch_indexed: false,
                            });
                            operand_binds.push((idx, rhs));
                        } else if rd.volume() == batch * n {
                            post_ops.push(PostOpSpec::BinaryRowVec {
                                op,
                                batch_indexed: true,
                            });
                            operand_binds.push((idx, rhs));
                        } else if rd.shape() == out_desc.shape() {
                            post_ops.push(PostOpSpec::BinaryFull { op });
                            operand_binds.push((idx, rhs));
                        } else {
                            return Err(err(format!(
                                "unsupported fused binary operand shape {:?}",
                                rd.shape()
                            )));
                        }
                    }
                }
                OpKind::Reduce(rk) => {
                    let op = match rk {
                        ReduceKind::Sum => gc_tir::ReduceOp::Sum,
                        ReduceKind::Max => gc_tir::ReduceOp::Max,
                    };
                    post_ops.push(PostOpSpec::ReduceRow(op));
                    reduce_outputs.push(po.outputs[0]);
                }
                OpKind::Quantize { dtype, params } => {
                    if *dtype != DataType::U8 {
                        return Err(err("fused quantize must target u8"));
                    }
                    post_ops.push(PostOpSpec::Quantize {
                        scale: params.scale,
                        zero_point: params.zero_point,
                    });
                }
                OpKind::Reorder { target } => {
                    if !target.is_plain() {
                        return Err(err("fused output reorder must target plain layout"));
                    }
                    // plain output is the default; nothing to add
                }
                other => return Err(err(format!("unsupported fused post-op {other}"))),
            }
            produced.push(po.outputs[0]);
        }
        // quantize, if present, must be last (output write handles it)
        if let Some(qpos) = post_ops
            .iter()
            .position(|p| matches!(p, PostOpSpec::Quantize { .. }))
        {
            if qpos + 1 != post_ops.len() {
                return Err(err("fused quantize must be the final post-op"));
            }
        }
        let has_reduce = !reduce_outputs.is_empty();

        // --- rhs arrival (decided early: k-slicing requires a blocked
        // constant weight, so the constraint depends on it)
        let b_is_const = graph.tensor(b_src).property == Property::Constant;
        let b_input = if b_is_const && graph.const_value(b_src).is_some() {
            BInput::BlockedWeight
        } else {
            BInput::PlainInLoop {
                transposed: b_transposed,
            }
        };

        // --- constraints (grouping + layout negotiation)
        let mut constraints = Constraints {
            full_n_per_task: has_reduce || grouped,
            // the k-sliced template's phase-2 epilogue handles every
            // post-op except row reductions, and only the blocked-weight
            // rhs path is lowered. Grouped members may k-slice too: the
            // two-phase loops keep their implicit barrier inside the
            // merged function (the paper's barrier between layers), and
            // this is exactly the case where a shared row-only
            // decomposition underfills the pool.
            allow_k_slice: self.opts.k_slice
                && !has_reduce
                && matches!(b_input, BInput::BlockedWeight),
            ..Constraints::default()
        };
        // Edge-tile (ragged) eligibility: only the prepacked blocked-
        // weight path has pad-to-tile storage, and only operand shapes
        // that never read past the logical edge survive a pad. Grouped
        // members share fixed decompositions, so they stay exact.
        let has_full = post_ops
            .iter()
            .any(|p| matches!(p, PostOpSpec::BinaryFull { .. }));
        let has_rowvec = post_ops
            .iter()
            .any(|p| matches!(p, PostOpSpec::BinaryRowVec { .. }));
        let ragged_ok =
            self.opts.ragged && matches!(b_input, BInput::BlockedWeight) && !has_reduce && !grouped;
        constraints.allow_ragged_m = ragged_ok && !has_full;
        constraints.allow_ragged_n = ragged_ok && !has_full && !has_rowvec;
        constraints.allow_ragged_k = ragged_ok;
        if grouped {
            if group_mb.is_none() {
                let (mb, tasks) = group_decomposition(machine, batch, m, self.opts.k_slice);
                *group_mb = Some(mb);
                *group_tasks = Some(tasks);
            }
            constraints.fixed_mb = *group_mb;
            constraints.fixed_tasks = *group_tasks;
        }
        // chained producer: previous member of the group, or (when
        // layout propagation is on) any tunable part producing our A
        let chained_prev: Option<&PartPlan> = if let Some(p) = prev_in_group {
            Some(p)
        } else if self.opts.propagate_layouts {
            graph
                .producer(a_src)
                .and_then(|po| parts.part_of(po))
                .and_then(|ppi| all_plans.get(&ppi))
                .filter(|_p| {
                    // single consumer and shapes chain directly
                    graph.consumers(a_src).len() == 1
                })
        } else {
            None
        };
        // Layout propagation is cost-driven: reading the producer's
        // blocked output pins MB/KB to the producer's MB/NB, which can
        // force a poor tiling. Compare against free parameters plus the
        // fused pack's streaming cost and keep the cheaper option.
        let pick = |c: &Constraints| {
            let analytic = if self.opts.library_params {
                crate::heuristic::choose_params_library(machine, &problem, c)
            } else {
                choose_params(machine, &problem, c)
            };
            // Measured-tuning override: exact (problem, constraints)
            // match only, and only if the tuned params still tile this
            // problem — a stale database entry falls back silently.
            let chosen = match self.opts.overrides.get(&problem, c) {
                Some(p) if p.validate(&problem).is_ok() => p,
                _ => analytic,
            };
            if let Some(log) = &self.opts.param_log {
                log.lock().unwrap().push(crate::heuristic::ParamChoice {
                    problem,
                    constraints: *c,
                    params: chosen,
                });
            }
            chosen
        };
        let p_plain = pick(&constraints);
        let pack_cost = gc_machine::cost::stream_cycles(
            machine,
            2.0 * (problem.batch * problem.m * problem.k * problem.elem_bytes) as f64,
        ) / machine.cores as f64;
        let cost_plain = crate::heuristic::estimate_cycles(machine, &problem, &p_plain) + pack_cost;
        let (a_input, params) = match chained_prev {
            Some(prev) if self.opts.propagate_layouts => {
                let mut blocked = constraints;
                blocked.fixed_mb = Some(prev.spec.params.mb);
                blocked.fixed_kb = Some(prev.spec.params.nb);
                // the blocked-A chain reads the producer's exact tiles;
                // no clamped packs exist on that path
                blocked.allow_ragged_m = false;
                blocked.allow_ragged_n = false;
                blocked.allow_ragged_k = false;
                // pinned MB/KB may be infeasible together with a fixed
                // group task count; fall back to plain if so
                let feasible = problem.m.is_multiple_of(prev.spec.params.mb)
                    && problem.k.is_multiple_of(prev.spec.params.nb);
                if feasible {
                    let p_blocked = pick(&blocked);
                    let cost_blocked =
                        crate::heuristic::estimate_cycles(machine, &problem, &p_blocked);
                    if cost_blocked <= cost_plain {
                        (AInput::Blocked, p_blocked)
                    } else {
                        (AInput::Plain, p_plain)
                    }
                } else {
                    (AInput::Plain, p_plain)
                }
            }
            _ => (AInput::Plain, p_plain),
        };

        let spec = MatmulSpec {
            problem,
            params,
            int8,
            bias: false,
            a_input,
            b_input,
            post_ops,
            out: OutLayout::Plain, // may be upgraded to blocked later
            out_dtype: out_desc.dtype(),
            forced_post_anchor: self.opts.forced_post_anchor,
            forced_pack: self.opts.forced_pack,
        };

        // --- binds, in role order
        let mut binds = vec![Bind::Tensor(a_src)];
        binds.push(match b_input {
            BInput::BlockedWeight => Bind::PrepackedWeight(b_src),
            BInput::PlainInLoop { .. } => Bind::Tensor(b_src),
        });
        if spec.int8.is_some() {
            binds.push(Bind::Comp(b_src));
        }
        for (idx, lt) in &operand_binds {
            let _ = idx;
            binds.push(Bind::Tensor(*lt));
        }
        binds.push(Bind::Tensor(out_lt));

        Ok(PartPlan { spec, binds })
    }

    fn resolve_bind(&mut self, bind: Bind, spec: &MatmulSpec) -> Result<usize, LowerError> {
        match bind {
            Bind::Tensor(lt) => Ok(self.global_for(lt)),
            Bind::PrepackedWeight(w) => self.prepacked_weight(w, spec.params.kb, spec.params.nb),
            Bind::Comp(w) => self.compensation(w, spec.params.kb, spec.params.nb),
        }
    }

    fn lower_single_tunable(
        &mut self,
        _parts: &Partitioning,
        pi: usize,
        _part: &FusedOp,
        plan: &PartPlan,
    ) -> Result<(), LowerError> {
        let lowered = lower_matmul(&self.opts.machine, &plan.spec, &format!("fused_op_{pi}"));
        let mut args = Vec::with_capacity(plan.binds.len());
        for &bind in &plan.binds {
            args.push(self.resolve_bind(bind, &plan.spec)?);
        }
        debug_assert_eq!(args.len(), lowered.func.params.len());
        let fi = self.module.add_func(lowered.func);
        self.module.main_calls.push(Call { func: fi, args });
        Ok(())
    }

    /// Lower a coarse group into a single function, then (optionally)
    /// merge its parallel loops.
    fn lower_group(
        &mut self,
        parts: &Partitioning,
        group: &[usize],
        plans: &HashMap<usize, PartPlan>,
    ) -> Result<(), LowerError> {
        // intermediates: tensors produced and consumed inside the group
        let mut internal: Vec<LtId> = Vec::new();
        for (i, &pi) in group.iter().enumerate() {
            if i + 1 == group.len() {
                break;
            }
            let out = parts.parts[pi].output(self.graph);
            internal.push(out);
        }

        let mut combined = Func {
            name: format!("group_{}", group[0]),
            params: vec![],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        let mut args: Vec<usize> = Vec::new();
        let mut global_to_param: HashMap<usize, usize> = HashMap::new();
        let mut internal_local: HashMap<LtId, usize> = HashMap::new();

        for &pi in group {
            let plan = &plans[&pi];
            let lowered = lower_matmul(&self.opts.machine, &plan.spec, &format!("fused_op_{pi}"));
            let f = lowered.func;
            let var_off = combined.var_count;
            combined.var_count += f.var_count;
            // map this member's params (may itself append `inter_*`
            // locals, so the member-local offset is computed after)
            let mut param_map: Vec<BufId> = Vec::with_capacity(f.params.len());
            for (j, decl) in f.params.iter().enumerate() {
                let bind = plan.binds[j];
                let as_internal = match bind {
                    Bind::Tensor(lt) if internal.contains(&lt) => Some(lt),
                    _ => None,
                };
                if let Some(lt) = as_internal {
                    let l = *internal_local.entry(lt).or_insert_with(|| {
                        combined.locals.push(BufDecl::new(
                            decl.dtype,
                            decl.elems,
                            format!("inter_{}", lt.0),
                        ));
                        combined.locals.len() - 1
                    });
                    param_map.push(BufId::Local(l));
                } else {
                    let g = self.resolve_bind(bind, &plan.spec)?;
                    let p = *global_to_param.entry(g).or_insert_with(|| {
                        combined.params.push(decl.clone());
                        args.push(g);
                        combined.params.len() - 1
                    });
                    param_map.push(BufId::Param(p));
                }
            }
            let local_off = combined.locals.len();
            for l in &f.locals {
                combined.locals.push(l.clone());
            }
            for stmt in f.body {
                combined
                    .body
                    .push(remap_stmt(stmt, &param_map, local_off, var_off));
            }
        }

        if self.opts.merge_coarse_groups {
            let _ = merge_parallel_loops(&mut combined);
            if self.opts.validate {
                validate_func(&combined).map_err(|e| {
                    err(format!(
                        "validator after merge_parallel_loops in `{}`: {e}",
                        combined.name
                    ))
                })?;
            }
        }
        let fi = self.module.add_func(combined);
        self.module.main_calls.push(Call { func: fi, args });
        Ok(())
    }

    fn lower_standalone_part(&mut self, part: &FusedOp) -> Result<(), LowerError> {
        let op_id = part.ops()[0];
        let op = self.graph.op(op_id).clone();
        // scalar-const rhs for binary ops
        let scalar_rhs = match op.kind {
            OpKind::Binary(_) => self.scalar_const(op.inputs[1]),
            _ => None,
        };
        let in_descs: Vec<_> = op.inputs.iter().map(|&i| self.graph.desc(i)).collect();
        let out = op.outputs[0];
        let func = lower_standalone(
            &op.kind,
            &in_descs,
            self.graph.desc(out),
            scalar_rhs,
            &format!("op_{}", op.kind.mnemonic()),
        );
        let n_params = func.params.len();
        let fi = self.module.add_func(func);
        let mut args: Vec<usize> = Vec::new();
        for (j, &i) in op.inputs.iter().enumerate() {
            if scalar_rhs.is_some() && j == 1 {
                continue; // folded into the kernel
            }
            args.push(self.global_for(i));
        }
        args.push(self.global_for(out));
        if args.len() != n_params {
            return Err(err(format!(
                "standalone op {} arity mismatch ({} args, {} params)",
                op.kind.mnemonic(),
                args.len(),
                n_params
            )));
        }
        self.module.main_calls.push(Call { func: fi, args });
        Ok(())
    }

    fn scalar_const(&self, lt: LtId) -> Option<f32> {
        let v = self.graph.const_value(lt)?;
        if v.desc().volume() == 1 && v.desc().dtype() == DataType::F32 {
            Some(v.f32_slice().ok()?[0])
        } else {
            None
        }
    }
}

/// Extract the matmul problem of a tunable partition (for group
/// profitability analysis; mirrors `plan_tunable`'s size derivation).
/// Returns `(problem, has_reduce, b_blocked)` where `b_blocked` says the
/// rhs is a constant weight that will arrive pre-packed (the k-sliced
/// template requires it).
fn part_problem(graph: &Graph, part: &FusedOp) -> Option<(MatmulProblem, bool, bool)> {
    let t_op = graph.op(part.tunable?);
    let mut a_src = t_op.inputs[0];
    for &pre in &part.pre_ops {
        let p = graph.op(pre);
        if p.outputs[0] == a_src {
            a_src = p.inputs[0];
        }
    }
    let out_lt = part.output(graph);
    let shape = graph.desc(out_lt).shape().to_vec();
    let rank = shape.len();
    if rank < 2 {
        return None;
    }
    let (m, n) = (shape[rank - 2], shape[rank - 1]);
    let k = *graph.desc(a_src).shape().last()?;
    let batch: usize = shape[..rank - 2].iter().product();
    let elem = match &t_op.kind {
        OpKind::QuantizedMatMul { .. } => 1,
        _ => 4,
    };
    let has_reduce = part
        .post_ops
        .iter()
        .any(|&o| matches!(graph.op(o).kind, OpKind::Reduce(_)));
    let b_src = t_op.inputs[1];
    let b_blocked =
        graph.tensor(b_src).property == Property::Constant && graph.const_value(b_src).is_some();
    Some((
        MatmulProblem::batched(batch, m, n, k, elem),
        has_reduce,
        b_blocked,
    ))
}

/// Decide whether merging a coarse group is profitable: the shared
/// row-only decomposition can force poor tilings (e.g. MB = 1 for tiny
/// batches), in which case the group is split. With k-slicing enabled
/// the grouped estimate may recover the lost parallelism by splitting
/// the reduction instead, so small-batch groups are judged by the cost
/// model rather than rejected outright.
fn group_profitable(
    machine: &MachineDescriptor,
    graph: &Graph,
    parts: &Partitioning,
    group: &[usize],
    k_slice: bool,
) -> bool {
    let mut probs = Vec::new();
    for &pi in group {
        match part_problem(graph, &parts.parts[pi]) {
            Some(pr) => probs.push(pr),
            None => return false,
        }
    }
    let (batch, m) = (probs[0].0.batch, probs[0].0.m);
    let (mb_g, tasks_g) = group_decomposition(machine, batch, m, k_slice);
    let mut merged = 0.0;
    let mut free = 0.0;
    for (prob, has_reduce, b_blocked) in &probs {
        let allow_k_slice = k_slice && !has_reduce && *b_blocked;
        let gc = Constraints {
            full_n_per_task: true,
            fixed_mb: Some(mb_g),
            fixed_tasks: Some(tasks_g),
            allow_k_slice,
            ..Constraints::default()
        };
        let fc = Constraints {
            full_n_per_task: *has_reduce,
            allow_k_slice,
            ..Constraints::default()
        };
        let pg = choose_params(machine, prob, &gc);
        let pf = choose_params(machine, prob, &fc);
        let cg = crate::heuristic::estimate_cycles(machine, prob, &pg);
        let cf = crate::heuristic::estimate_cycles(machine, prob, &pf);
        if std::env::var("GC_DEBUG_GROUPS").is_ok() {
            eprintln!("  member {prob:?}: grouped {pg:?} = {cg:.0} | free {pf:?} = {cf:.0}");
        }
        merged += cg;
        free += cf;
    }
    // merging removes the inter-op barriers and keeps each intermediate
    // slice hot instead of round-tripping it through memory
    let barrier_savings = (group.len() - 1) as f64 * gc_machine::cost::barrier_cycles(machine);
    let mut locality_savings = 0.0;
    for (prob, _, _) in probs.iter().take(probs.len() - 1) {
        let bytes = (prob.batch * prob.m * prob.n * 4) as f64;
        locality_savings +=
            2.0 * gc_machine::cost::stream_cycles(machine, bytes) / machine.cores as f64;
    }
    // The analytic model cannot see the merged loop's inter-op cache
    // locality (each core's activation slice stays hot between members),
    // so the comparison carries a tolerance in favour of merging. With
    // k-slicing the free estimate can exploit reduction-splitting that a
    // shared row-only decomposition cannot, so degenerate groups (e.g.
    // MB = 1 row-slicing of tiny batches) now lose on cost and split.
    if std::env::var("GC_DEBUG_GROUPS").is_ok() {
        eprintln!(
            "[coarse] group of {}: merged {:.0} vs free {:.0} (+barrier {:.0} +locality {:.0})",
            group.len(),
            merged,
            free,
            barrier_savings,
            locality_savings
        );
    }
    merged <= free + barrier_savings + locality_savings
}

/// Pick the shared (MB, task-count) decomposition for a coarse group:
/// row-only parallelism sized to the machine.
///
/// Without k-slicing, manufacturing enough row-tasks for the pool is the
/// only lever, so small-batch groups degenerate to `MB = 1`. With
/// `k_slice` the template can widen the accumulation phase by `KPN`
/// instead, so the decomposition keeps a sane tile (`MB >= 4`) and
/// accepts fewer row-tasks — the per-member parameter search fills the
/// remaining cores by splitting each member's reduction.
fn group_decomposition(
    machine: &MachineDescriptor,
    batch: usize,
    m: usize,
    k_slice: bool,
) -> (usize, usize) {
    if batch >= machine.cores {
        // batch parallelism suffices; keep comfortable tiles
        return (crate::largest_divisor_at_most(m, 32), batch);
    }
    let want_mpn = machine.cores.div_ceil(batch);
    let mb_floor = if k_slice && m.is_multiple_of(4) { 4 } else { 1 };
    // choose mb as large as possible while still allowing >= want_mpn
    // row-tasks (or as many as m allows)
    let mut best = (
        mb_floor,
        batch * crate::largest_divisor_at_most(m / mb_floor, want_mpn),
    );
    for mb in (mb_floor..=32).rev() {
        if !m.is_multiple_of(mb) {
            continue;
        }
        let m_tiles = m / mb;
        // mpn = largest divisor of m_tiles <= want_mpn
        let mpn = (1..=m_tiles.min(want_mpn))
            .rev()
            .find(|d| m_tiles.is_multiple_of(*d))
            .unwrap_or(1);
        let tasks = batch * mpn;
        let better = tasks >= best.1 || (tasks == best.1 && mb > best.0);
        if better {
            best = (mb, tasks);
            if mpn == want_mpn {
                break;
            }
        }
    }
    best
}

fn remap_stmt(s: Stmt, param_map: &[BufId], local_off: usize, var_off: usize) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            parallel,
            body,
        } => Stmt::For {
            var: gc_tir::VarId(var.0 + var_off),
            extent,
            parallel,
            body: body
                .into_iter()
                .map(|b| remap_stmt(b, param_map, local_off, var_off))
                .collect(),
        },
        Stmt::Op(i) => {
            let i = gc_tir::visit::map_intrinsic_exprs(i, &|e| shift_vars(e, var_off));
            Stmt::Op(remap_bufs(i, param_map, local_off))
        }
    }
}

fn shift_vars(e: &Expr, off: usize) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Var(v) => Expr::Var(gc_tir::VarId(v.0 + off)),
        Expr::Add(a, b) => Expr::Add(Box::new(shift_vars(a, off)), Box::new(shift_vars(b, off))),
        Expr::Mul(a, b) => Expr::Mul(Box::new(shift_vars(a, off)), Box::new(shift_vars(b, off))),
        Expr::Div(a, b) => Expr::Div(Box::new(shift_vars(a, off)), Box::new(shift_vars(b, off))),
        Expr::Rem(a, b) => Expr::Rem(Box::new(shift_vars(a, off)), Box::new(shift_vars(b, off))),
    }
}

fn remap_bufs(i: Intrinsic, param_map: &[BufId], local_off: usize) -> Intrinsic {
    let mb = |b: BufId| match b {
        BufId::Param(p) => param_map[p],
        BufId::Local(l) => BufId::Local(l + local_off),
    };
    map_intrinsic_bufs(i, &mb)
}

/// Map every buffer reference of an intrinsic.
pub(crate) fn map_intrinsic_bufs(i: Intrinsic, f: &impl Fn(BufId) -> BufId) -> Intrinsic {
    use Intrinsic as I;
    let mv = |v: View| View {
        buf: f(v.buf),
        offset: v.offset,
        len: v.len,
    };
    match i {
        I::BrgemmF32 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => I::BrgemmF32 {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
        },
        I::BrgemmU8I8 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => I::BrgemmU8I8 {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
        },
        I::FillF32 { dst, value } => I::FillF32 {
            dst: mv(dst),
            value,
        },
        I::ZeroI32 { dst } => I::ZeroI32 { dst: mv(dst) },
        I::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => I::Pack2D {
            src: f(src),
            src_offset,
            src_row_stride,
            src_col_stride,
            dst: mv(dst),
            rows,
            cols,
        },
        I::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => I::Unpack2D {
            src: mv(src),
            dst: f(dst),
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        },
        I::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => I::Pack2DPad {
            src: f(src),
            src_offset,
            src_row_stride,
            src_col_stride,
            dst: mv(dst),
            rows,
            cols,
            row_clamp,
            col_clamp,
        },
        I::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => I::Unpack2DClamp {
            src: mv(src),
            dst: f(dst),
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        },
        I::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => I::BrgemmF32Tail {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
            m_clamp,
        },
        I::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => I::BrgemmU8I8Tail {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
            m_clamp,
        },
        I::Unary { op, src, dst } => I::Unary {
            op,
            src: mv(src),
            dst: mv(dst),
        },
        I::Binary { op, a, b, dst } => I::Binary {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
        },
        I::BinaryScalar { op, a, scalar, dst } => I::BinaryScalar {
            op,
            a: mv(a),
            scalar,
            dst: mv(dst),
        },
        I::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => I::BinaryRowBcast {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
            rows,
            cols,
        },
        I::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => I::BinaryColBcast {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
            rows,
            cols,
        },
        I::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => I::ReduceRows {
            op,
            src: mv(src),
            acc: mv(acc),
            rows,
            cols,
            accumulate,
        },
        I::DequantAcc {
            acc,
            comp,
            a_zero,
            scale,
            bias,
            dst,
            rows,
            cols,
        } => I::DequantAcc {
            acc: mv(acc),
            comp: mv(comp),
            a_zero,
            scale,
            bias: bias.map(mv),
            dst: mv(dst),
            rows,
            cols,
        },
        I::QuantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => I::QuantU8 {
            src: mv(src),
            dst: mv(dst),
            scale,
            zero_point,
        },
        I::DequantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => I::DequantU8 {
            src: mv(src),
            dst: mv(dst),
            scale,
            zero_point,
        },
        I::DequantI8 { src, dst, scale } => I::DequantI8 {
            src: mv(src),
            dst: mv(dst),
            scale,
        },
        I::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => I::CompAccumulate {
            b_tile: mv(b_tile),
            comp: mv(comp),
            nb,
            kb,
        },
        I::CastI32F32 { src, dst } => I::CastI32F32 {
            src: mv(src),
            dst: mv(dst),
        },
        I::AddF32 { src, dst } => I::AddF32 {
            src: mv(src),
            dst: mv(dst),
        },
        I::AddI32 { src, dst } => I::AddI32 {
            src: mv(src),
            dst: mv(dst),
        },
    }
}
