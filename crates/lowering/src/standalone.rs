//! Lowering of standalone (unfused) Fusible OPs.
//!
//! When fine-grain fusion is disabled — or an op cannot be fused — each
//! Fusible OP lowers to its own small function: a parallel loop over row
//! blocks with the op's slice kernel in the body. Reorders lower to
//! tile pack/unpack loops (also used by the init stage for constant
//! weight prepacking).

use gc_graph::{BinaryKind, OpKind, ReduceKind, UnaryKind};
use gc_microkernel::{BinaryOp, UnaryOp};
use gc_tensor::{DataType, Layout, TensorDesc};
use gc_tir::{AxisClamp, BufDecl, BufId, Expr, Func, Intrinsic, ReduceOp, Stmt, View};

/// Map graph unary kinds to microkernel ops.
pub fn unary_op(k: UnaryKind) -> UnaryOp {
    match k {
        UnaryKind::Relu => UnaryOp::Relu,
        UnaryKind::Gelu => UnaryOp::Gelu,
        UnaryKind::Sigmoid => UnaryOp::Sigmoid,
        UnaryKind::Tanh => UnaryOp::Tanh,
        UnaryKind::Exp => UnaryOp::Exp,
        UnaryKind::Square => UnaryOp::Square,
        UnaryKind::Neg => UnaryOp::Neg,
        UnaryKind::Identity => UnaryOp::Identity,
    }
}

/// Map graph binary kinds to microkernel ops.
pub fn binary_op(k: BinaryKind) -> BinaryOp {
    match k {
        BinaryKind::Add => BinaryOp::Add,
        BinaryKind::Sub => BinaryOp::Sub,
        BinaryKind::Mul => BinaryOp::Mul,
        BinaryKind::Div => BinaryOp::Div,
        BinaryKind::Max => BinaryOp::Max,
        BinaryKind::Min => BinaryOp::Min,
    }
}

fn chunked_elementwise(
    name: &str,
    in_dtype: DataType,
    out_dtype: DataType,
    elems: usize,
    body: impl Fn(View, View) -> Intrinsic,
) -> Func {
    let mut f = Func {
        name: name.to_string(),
        params: vec![
            BufDecl::new(in_dtype, elems, "in"),
            BufDecl::new(out_dtype, elems, "out"),
        ],
        locals: vec![],
        var_count: 0,
        body: vec![],
    };
    let v = f.fresh_var();
    // chunk to ~16KiB granules for parallelism
    let chunk = (elems / 64).clamp(1, 4096).max(1);
    let chunks = elems / chunk;
    let tail = elems % chunk;
    f.body.push(Stmt::parallel(
        v,
        chunks,
        vec![Stmt::Op(body(
            View::new(BufId::Param(0), Expr::v(v).mul(Expr::from(chunk)), chunk),
            View::new(BufId::Param(1), Expr::v(v).mul(Expr::from(chunk)), chunk),
        ))],
    ));
    if tail > 0 {
        f.body.push(Stmt::Op(body(
            View::new(BufId::Param(0), Expr::from(chunks * chunk), tail),
            View::new(BufId::Param(1), Expr::from(chunks * chunk), tail),
        )));
    }
    f
}

/// Lower a standalone op given its input/output descriptors.
/// `scalar_rhs` carries the rhs value for binary ops whose rhs is a
/// compile-time scalar constant.
///
/// # Panics
///
/// Panics for op kinds that can never be standalone (Tunable ops go
/// through the template; Complex ops are decomposed before lowering) or
/// unsupported layout combinations.
pub fn lower_standalone(
    kind: &OpKind,
    inputs: &[&TensorDesc],
    output: &TensorDesc,
    scalar_rhs: Option<f32>,
    name: &str,
) -> Func {
    match kind {
        OpKind::Unary(u) => {
            let op = unary_op(*u);
            chunked_elementwise(
                name,
                DataType::F32,
                DataType::F32,
                output.volume(),
                |s, d| Intrinsic::Unary { op, src: s, dst: d },
            )
        }
        OpKind::TypeCast { to: DataType::F32 } if inputs[0].dtype() == DataType::I32 => {
            chunked_elementwise(
                name,
                DataType::I32,
                DataType::F32,
                output.volume(),
                |s, d| Intrinsic::CastI32F32 { src: s, dst: d },
            )
        }
        OpKind::Quantize { dtype, params } => {
            assert_eq!(*dtype, DataType::U8, "standalone quantize targets u8");
            let (scale, zp) = (params.scale, params.zero_point);
            chunked_elementwise(
                name,
                DataType::F32,
                DataType::U8,
                output.volume(),
                |s, d| Intrinsic::QuantU8 {
                    src: s,
                    dst: d,
                    scale,
                    zero_point: zp,
                },
            )
        }
        OpKind::Dequantize { params } => {
            let (scale, zp) = (params.scale, params.zero_point);
            match inputs[0].dtype() {
                DataType::U8 => chunked_elementwise(
                    name,
                    DataType::U8,
                    DataType::F32,
                    output.volume(),
                    |s, d| Intrinsic::DequantU8 {
                        src: s,
                        dst: d,
                        scale,
                        zero_point: zp,
                    },
                ),
                DataType::I8 => chunked_elementwise(
                    name,
                    DataType::I8,
                    DataType::F32,
                    output.volume(),
                    |s, d| Intrinsic::DequantI8 {
                        src: s,
                        dst: d,
                        scale,
                    },
                ),
                other => panic!("dequantize of {other}"),
            }
        }
        OpKind::Binary(b) => lower_standalone_binary(*b, inputs, output, scalar_rhs, name),
        OpKind::Reduce(r) => {
            let op = match r {
                ReduceKind::Sum => ReduceOp::Sum,
                ReduceKind::Max => ReduceOp::Max,
            };
            let shape = inputs[0].shape();
            let cols = *shape.last().unwrap();
            let rows = inputs[0].volume() / cols;
            let mut f = Func {
                name: name.to_string(),
                params: vec![
                    BufDecl::new(DataType::F32, rows * cols, "in"),
                    BufDecl::new(DataType::F32, rows, "out"),
                ],
                locals: vec![],
                var_count: 0,
                body: vec![],
            };
            let v = f.fresh_var();
            let row_block = 8.min(rows);
            let blocks = rows / row_block;
            f.body.push(Stmt::parallel(
                v,
                blocks,
                vec![Stmt::Op(Intrinsic::ReduceRows {
                    op,
                    src: View::new(
                        BufId::Param(0),
                        Expr::v(v).mul(Expr::from(row_block * cols)),
                        row_block * cols,
                    ),
                    acc: View::new(
                        BufId::Param(1),
                        Expr::v(v).mul(Expr::from(row_block)),
                        row_block,
                    ),
                    rows: row_block,
                    cols,
                    accumulate: false,
                })],
            ));
            let tail = rows % row_block;
            if tail > 0 {
                f.body.push(Stmt::Op(Intrinsic::ReduceRows {
                    op,
                    src: View::new(
                        BufId::Param(0),
                        Expr::from(blocks * row_block * cols),
                        tail * cols,
                    ),
                    acc: View::new(BufId::Param(1), Expr::from(blocks * row_block), tail),
                    rows: tail,
                    cols,
                    accumulate: false,
                }));
            }
            f
        }
        OpKind::Reorder { target } => lower_reorder(inputs[0], target, name),
        OpKind::Transpose => lower_transpose(inputs[0], name),
        other => panic!("{other} cannot be lowered standalone"),
    }
}

fn lower_standalone_binary(
    b: BinaryKind,
    inputs: &[&TensorDesc],
    output: &TensorDesc,
    scalar_rhs: Option<f32>,
    name: &str,
) -> Func {
    let op = binary_op(b);
    let out_elems = output.volume();
    let rhs = inputs[1];
    let lhs_shape = inputs[0].shape();
    let cols = *lhs_shape.last().unwrap_or(&1);
    let rows = out_elems / cols.max(1);

    if let Some(s) = scalar_rhs {
        return chunked_elementwise(name, DataType::F32, DataType::F32, out_elems, |sv, d| {
            Intrinsic::BinaryScalar {
                op,
                a: sv,
                scalar: s,
                dst: d,
            }
        });
    }

    let mut f = Func {
        name: name.to_string(),
        params: vec![
            BufDecl::new(DataType::F32, out_elems, "a"),
            BufDecl::new(DataType::F32, rhs.volume(), "b"),
            BufDecl::new(DataType::F32, out_elems, "out"),
        ],
        locals: vec![],
        var_count: 0,
        body: vec![],
    };
    let v = f.fresh_var();

    if rhs.volume() == out_elems && rhs.shape() == lhs_shape {
        // same shape: flat chunks
        let chunk = cols;
        f.body.push(Stmt::parallel(
            v,
            rows,
            vec![Stmt::Op(Intrinsic::Binary {
                op,
                a: View::new(BufId::Param(0), Expr::v(v).mul(Expr::from(chunk)), chunk),
                b: View::new(BufId::Param(1), Expr::v(v).mul(Expr::from(chunk)), chunk),
                dst: View::new(BufId::Param(2), Expr::v(v).mul(Expr::from(chunk)), chunk),
            })],
        ));
        return f;
    }
    // row vector [cols] (possibly with leading 1s)
    if rhs.volume() == cols {
        f.body.push(Stmt::parallel(
            v,
            rows,
            vec![Stmt::Op(Intrinsic::BinaryRowBcast {
                op,
                a: View::new(BufId::Param(0), Expr::v(v).mul(Expr::from(cols)), cols),
                b: View::new(BufId::Param(1), 0usize, cols),
                dst: View::new(BufId::Param(2), Expr::v(v).mul(Expr::from(cols)), cols),
                rows: 1,
                cols,
            })],
        ));
        return f;
    }
    // batch-indexed row vector [B, 1, cols] against lhs [B, M, cols]
    // (the MHA mask pattern): row r uses vector (r / M)
    if lhs_shape.len() >= 2
        && rhs.shape().last() == Some(&cols)
        && rhs.volume() < out_elems
        && rhs.volume().is_multiple_of(cols)
        && rhs.volume() / cols > 1
    {
        let vecs = rhs.volume() / cols;
        let m_rows = rows / vecs;
        if vecs * m_rows == rows {
            let b_off =
                Expr::Div(Box::new(Expr::v(v)), Box::new(Expr::from(m_rows))).mul(Expr::from(cols));
            f.body.push(Stmt::parallel(
                v,
                rows,
                vec![Stmt::Op(Intrinsic::BinaryRowBcast {
                    op,
                    a: View::new(BufId::Param(0), Expr::v(v).mul(Expr::from(cols)), cols),
                    b: View::new(BufId::Param(1), b_off, cols),
                    dst: View::new(BufId::Param(2), Expr::v(v).mul(Expr::from(cols)), cols),
                    rows: 1,
                    cols,
                })],
            ));
            return f;
        }
    }
    // keepdim column stats [rows, 1] (softmax sub/div pattern)
    if rhs.volume() == rows && rhs.shape().last() == Some(&1) {
        f.body.push(Stmt::parallel(
            v,
            rows,
            vec![Stmt::Op(Intrinsic::BinaryColBcast {
                op,
                a: View::new(BufId::Param(0), Expr::v(v).mul(Expr::from(cols)), cols),
                b: View::new(BufId::Param(1), Expr::v(v), 1),
                dst: View::new(BufId::Param(2), Expr::v(v).mul(Expr::from(cols)), cols),
                rows: 1,
                cols,
            })],
        ));
        return f;
    }
    panic!(
        "unsupported standalone broadcast: lhs {:?} rhs {:?}",
        lhs_shape,
        rhs.shape()
    );
}

/// Lower a reorder between plain and the canonical blocked layouts.
///
/// The plain → blocked-weight direction supports *ragged* shapes: when
/// `KB` or `NB` does not divide the weight's K or N, the edge tiles are
/// zero-padded (pack-time padding), the output buffer holds the padded
/// `ceil(K/KB)*KB x ceil(N/NB)*NB` extent, and the steady-state matmul
/// loops only ever see whole tiles. All other directions require exact
/// divisibility.
pub fn lower_reorder(input: &TensorDesc, target: &Layout, name: &str) -> Func {
    let shape = input.shape();
    let rank = shape.len();
    assert!(rank >= 2, "reorder needs rank >= 2");
    let rows_dim = shape[rank - 2];
    let cols_dim = shape[rank - 1];
    let batch: usize = shape[..rank - 2].iter().product();
    let elems = input.volume();
    let dtype = input.dtype();
    let out_elems = match (input.layout(), target) {
        (Layout::Plain, Layout::Blocked(_)) => {
            let (rb, cb, b_is_weight) = blocked_factors(target, rank, rows_dim, cols_dim);
            if b_is_weight {
                batch * rows_dim.div_ceil(rb) * rb * cols_dim.div_ceil(cb) * cb
            } else {
                elems
            }
        }
        _ => elems,
    };

    let mut f = Func {
        name: name.to_string(),
        params: vec![
            BufDecl::new(dtype, elems, "in"),
            BufDecl::new(dtype, out_elems, "out"),
        ],
        locals: vec![],
        var_count: 0,
        body: vec![],
    };
    let tvar = f.fresh_var();
    let inner = f.fresh_var();

    match (input.layout(), target) {
        (Layout::Plain, Layout::Blocked(_)) => {
            let (rb, cb, b_is_weight) = blocked_factors(target, rank, rows_dim, cols_dim);
            let ragged =
                b_is_weight && (!rows_dim.is_multiple_of(rb) || !cols_dim.is_multiple_of(cb));
            let (r_tiles, c_tiles) = if b_is_weight {
                (rows_dim.div_ceil(rb), cols_dim.div_ceil(cb))
            } else {
                (rows_dim / rb, cols_dim / cb)
            };
            // For blocked_a: dst tile (rt, ct) holds rows-major [rb, cb]
            // For blocked_b (weight): dst tile (rt, ct) holds [cb_n][rb_k]
            // panels; here rows_dim=K, cols_dim=N, tile [NB, KB].
            let body = if !b_is_weight {
                let src_off = Expr::v(tvar)
                    .mul(Expr::from(rows_dim * cols_dim))
                    .add(
                        Expr::v(inner)
                            .clone()
                            .div_floor(c_tiles)
                            .mul(Expr::from(rb * cols_dim)),
                    )
                    .add(Expr::v(inner).rem_of(c_tiles).mul(Expr::from(cb)));
                let dst = View::new(
                    BufId::Param(1),
                    Expr::v(tvar)
                        .mul(Expr::from(r_tiles * c_tiles))
                        .add(Expr::v(inner))
                        .mul(Expr::from(rb * cb)),
                    rb * cb,
                );
                Intrinsic::Pack2D {
                    src: BufId::Param(0),
                    src_offset: src_off,
                    src_row_stride: cols_dim,
                    src_col_stride: 1,
                    dst,
                    rows: rb,
                    cols: cb,
                }
            } else {
                // weight layout: outer [K/KB, N/NB], tile [NB, KB]
                // inner indexes (kt * n_tiles + nt)
                let kt = Expr::v(inner).div_floor(c_tiles);
                let nt = Expr::v(inner).rem_of(c_tiles);
                let dst = View::new(
                    BufId::Param(1),
                    Expr::v(tvar)
                        .mul(Expr::from(r_tiles * c_tiles))
                        .add(Expr::v(inner))
                        .mul(Expr::from(rb * cb)),
                    rb * cb,
                );
                if ragged {
                    // pack-time padding: edge tiles zero-fill the
                    // out-of-range region so the matmul's steady-state
                    // loops only see whole [NB, KB] tiles
                    Intrinsic::Pack2DPad {
                        src: BufId::Param(0),
                        src_offset: Expr::v(tvar).mul(Expr::from(rows_dim * cols_dim)),
                        // dst[r=n][c=k] = src[(kt*KB + c)*N + nt*NB + r]
                        src_row_stride: 1,
                        src_col_stride: cols_dim,
                        dst,
                        rows: cb,
                        cols: rb,
                        row_clamp: AxisClamp::new(nt.mul(Expr::from(cb)), cols_dim),
                        col_clamp: AxisClamp::new(kt.mul(Expr::from(rb)), rows_dim),
                    }
                } else {
                    let src_off = Expr::v(tvar)
                        .mul(Expr::from(rows_dim * cols_dim))
                        .add(kt.mul(Expr::from(rb * cols_dim)))
                        .add(nt.mul(Expr::from(cb)));
                    Intrinsic::Pack2D {
                        src: BufId::Param(0),
                        src_offset: src_off,
                        // dst[r=n][c=k] = src[(kt*KB + c)*N + nt*NB + r]
                        src_row_stride: 1,
                        src_col_stride: cols_dim,
                        dst,
                        rows: cb,
                        cols: rb,
                    }
                }
            };
            f.body.push(Stmt::parallel(
                tvar,
                batch,
                vec![Stmt::loop_(inner, r_tiles * c_tiles, vec![Stmt::Op(body)])],
            ));
        }
        (Layout::Blocked(_), Layout::Plain) => {
            let (rb, cb, b_is_weight) = blocked_factors(input.layout(), rank, rows_dim, cols_dim);
            assert!(!b_is_weight, "unpacking weight layout is not needed");
            let r_tiles = rows_dim / rb;
            let c_tiles = cols_dim / cb;
            let src = View::new(
                BufId::Param(0),
                Expr::v(tvar)
                    .mul(Expr::from(r_tiles * c_tiles))
                    .add(Expr::v(inner))
                    .mul(Expr::from(rb * cb)),
                rb * cb,
            );
            let dst_off = Expr::v(tvar)
                .mul(Expr::from(rows_dim * cols_dim))
                .add(
                    Expr::v(inner)
                        .div_floor(c_tiles)
                        .mul(Expr::from(rb * cols_dim)),
                )
                .add(Expr::v(inner).rem_of(c_tiles).mul(Expr::from(cb)));
            f.body.push(Stmt::parallel(
                tvar,
                batch,
                vec![Stmt::loop_(
                    inner,
                    r_tiles * c_tiles,
                    vec![Stmt::Op(Intrinsic::Unpack2D {
                        src,
                        dst: BufId::Param(1),
                        dst_offset: dst_off,
                        dst_row_stride: cols_dim,
                        dst_col_stride: 1,
                        rows: rb,
                        cols: cb,
                    })],
                )],
            ));
        }
        (a, b) => panic!("unsupported reorder {a} -> {b}"),
    }
    f
}

/// Extract (row_block, col_block, is_weight_layout) from a blocked
/// layout over the last two axes.
fn blocked_factors(
    layout: &Layout,
    rank: usize,
    _rows: usize,
    _cols: usize,
) -> (usize, usize, bool) {
    let Layout::Blocked(blocks) = layout else {
        panic!("expected blocked layout")
    };
    assert_eq!(blocks.len(), 2, "two-axis blocking expected");
    let row_axis = rank - 2;
    let col_axis = rank - 1;
    // blocked_a lists (row, col); blocked_b lists (col, row)
    if blocks[0].axis == row_axis && blocks[1].axis == col_axis {
        (blocks[0].block, blocks[1].block, false)
    } else if blocks[0].axis == col_axis && blocks[1].axis == row_axis {
        (blocks[1].block, blocks[0].block, true)
    } else {
        panic!("blocking must cover the last two axes");
    }
}

/// Standalone transpose of the last two axes (plain layouts).
pub fn lower_transpose(input: &TensorDesc, name: &str) -> Func {
    let shape = input.shape();
    let rank = shape.len();
    let rows = shape[rank - 2];
    let cols = shape[rank - 1];
    let batch: usize = shape[..rank - 2].iter().product();
    let mut f = Func {
        name: name.to_string(),
        params: vec![
            BufDecl::new(input.dtype(), input.volume(), "in"),
            BufDecl::new(input.dtype(), input.volume(), "out"),
        ],
        locals: vec![],
        var_count: 0,
        body: vec![],
    };
    let v = f.fresh_var();
    // out[b][c][r] = in[b][r][c]: pack with swapped strides
    f.body.push(Stmt::parallel(
        v,
        batch,
        vec![Stmt::Op(Intrinsic::Pack2D {
            src: BufId::Param(0),
            src_offset: Expr::v(v).mul(Expr::from(rows * cols)),
            src_row_stride: 1,
            src_col_stride: cols,
            dst: View::new(
                BufId::Param(1),
                Expr::v(v).mul(Expr::from(rows * cols)),
                rows * cols,
            ),
            rows: cols,
            cols: rows,
        })],
    ));
    f
}

/// Small helpers on `Expr` for div/rem by constants.
trait ExprExt {
    fn div_floor(self, c: usize) -> Expr;
    fn rem_of(self, c: usize) -> Expr;
}

impl ExprExt for Expr {
    fn div_floor(self, c: usize) -> Expr {
        if c == 1 {
            self
        } else {
            Expr::Div(Box::new(self), Box::new(Expr::from(c)))
        }
    }
    fn rem_of(self, c: usize) -> Expr {
        if c == 1 {
            Expr::c(0)
        } else {
            Expr::Rem(Box::new(self), Box::new(Expr::from(c)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_runtime::ThreadPool;
    use gc_tensor::{reference, reorder, Storage, Tensor};
    use gc_tir::{Call, GlobalDecl, GlobalKind, Module};

    fn run1(f: Func, ins: Vec<Storage>, out: Storage) -> Storage {
        let mut m = Module::new();
        let n_params = f.params.len();
        let decls: Vec<_> = f.params.clone();
        let fi = m.add_func(f);
        for (i, d) in decls.iter().enumerate() {
            m.add_global(GlobalDecl {
                dtype: d.dtype,
                elems: d.elems,
                kind: GlobalKind::Scratch,
                name: format!("g{i}"),
            });
        }
        m.main_calls.push(Call {
            func: fi,
            args: (0..n_params).collect(),
        });
        m.validate().unwrap();
        let mut globals: Vec<Storage> = ins;
        globals.push(out);
        gc_tir::exec::run_module(&m, &mut globals, &ThreadPool::new(2), true).unwrap();
        globals.pop().unwrap()
    }

    #[test]
    fn standalone_relu_matches_reference() {
        let t = Tensor::random(&[33, 17], DataType::F32, 1);
        let f = lower_standalone(
            &OpKind::Unary(UnaryKind::Relu),
            &[t.desc()],
            t.desc(),
            None,
            "relu",
        );
        let out = run1(
            f,
            vec![Storage::F32(t.f32_slice().unwrap().to_vec())],
            Storage::F32(vec![0.; t.desc().volume()]),
        );
        let want = reference::relu(&t).unwrap();
        assert_eq!(out.as_slice::<f32>().unwrap(), want.f32_slice().unwrap());
    }

    #[test]
    fn standalone_binary_row_broadcast() {
        let a = Tensor::random(&[10, 16], DataType::F32, 2);
        let b = Tensor::random(&[16], DataType::F32, 3);
        let f = lower_standalone(
            &OpKind::Binary(BinaryKind::Add),
            &[a.desc(), b.desc()],
            a.desc(),
            None,
            "add",
        );
        let out = run1(
            f,
            vec![
                Storage::F32(a.f32_slice().unwrap().to_vec()),
                Storage::F32(b.f32_slice().unwrap().to_vec()),
            ],
            Storage::F32(vec![0.; 160]),
        );
        let want = reference::binary(reference::BinaryKind::Add, &a, &b).unwrap();
        assert_eq!(out.as_slice::<f32>().unwrap(), want.f32_slice().unwrap());
    }

    #[test]
    fn standalone_colstat_broadcast() {
        let a = Tensor::random(&[12, 8], DataType::F32, 4);
        let s = Tensor::random(&[12, 1], DataType::F32, 5);
        let f = lower_standalone(
            &OpKind::Binary(BinaryKind::Sub),
            &[a.desc(), s.desc()],
            a.desc(),
            None,
            "sub",
        );
        let out = run1(
            f,
            vec![
                Storage::F32(a.f32_slice().unwrap().to_vec()),
                Storage::F32(s.f32_slice().unwrap().to_vec()),
            ],
            Storage::F32(vec![0.; 96]),
        );
        let want = reference::binary(reference::BinaryKind::Sub, &a, &s).unwrap();
        assert_eq!(out.as_slice::<f32>().unwrap(), want.f32_slice().unwrap());
    }

    #[test]
    fn standalone_reduce_rows() {
        let a = Tensor::random(&[13, 9], DataType::F32, 6);
        let out_desc = TensorDesc::new([13usize, 1], DataType::F32);
        let f = lower_standalone(
            &OpKind::Reduce(ReduceKind::Max),
            &[a.desc()],
            &out_desc,
            None,
            "rmax",
        );
        let out = run1(
            f,
            vec![Storage::F32(a.f32_slice().unwrap().to_vec())],
            Storage::F32(vec![0.; 13]),
        );
        let want = reference::reduce_last_axis(reference::ReduceKind::Max, &a).unwrap();
        assert_eq!(out.as_slice::<f32>().unwrap(), want.f32_slice().unwrap());
    }

    #[test]
    fn reorder_plain_to_blocked_a_and_back() {
        let t = Tensor::random(&[16, 24], DataType::F32, 7);
        let layout = Layout::blocked_a(2, 4, 8);
        let f = lower_reorder(t.desc(), &layout, "pack");
        let blocked = run1(
            f,
            vec![Storage::F32(t.f32_slice().unwrap().to_vec())],
            Storage::F32(vec![0.; t.desc().volume()]),
        );
        let want = reorder::reorder(&t, layout.clone()).unwrap();
        assert_eq!(
            blocked.as_slice::<f32>().unwrap(),
            want.f32_slice().unwrap()
        );

        // and back
        let bdesc = TensorDesc::with_layout([16usize, 24], DataType::F32, layout).unwrap();
        let f2 = lower_reorder(&bdesc, &Layout::Plain, "unpack");
        let plain = run1(f2, vec![blocked], Storage::F32(vec![0.; t.desc().volume()]));
        assert_eq!(plain.as_slice::<f32>().unwrap(), t.f32_slice().unwrap());
    }

    #[test]
    fn reorder_weight_layout_matches_reference() {
        let w = Tensor::random(&[12, 8], DataType::I8, 8);
        let layout = Layout::blocked_b(2, 4, 2); // KB=4, NB=2
        let f = lower_reorder(w.desc(), &layout, "prepack");
        let blocked = run1(
            f,
            vec![Storage::I8(w.i8_slice().unwrap().to_vec())],
            Storage::I8(vec![0; w.desc().volume()]),
        );
        let want = reorder::reorder(&w, layout).unwrap();
        assert_eq!(blocked.as_slice::<i8>().unwrap(), want.i8_slice().unwrap());
    }

    #[test]
    fn batched_reorder() {
        let t = Tensor::random(&[3, 8, 8], DataType::F32, 9);
        let layout = Layout::blocked_a(3, 4, 4);
        let f = lower_reorder(t.desc(), &layout, "pack3");
        let blocked = run1(
            f,
            vec![Storage::F32(t.f32_slice().unwrap().to_vec())],
            Storage::F32(vec![0.; t.desc().volume()]),
        );
        let want = reorder::reorder(&t, layout).unwrap();
        assert_eq!(
            blocked.as_slice::<f32>().unwrap(),
            want.f32_slice().unwrap()
        );
    }

    #[test]
    fn standalone_transpose() {
        let t = Tensor::random(&[2, 5, 7], DataType::F32, 10);
        let f = lower_transpose(t.desc(), "t");
        let out = run1(
            f,
            vec![Storage::F32(t.f32_slice().unwrap().to_vec())],
            Storage::F32(vec![0.; t.desc().volume()]),
        );
        let want = reorder::transpose_last2(&t).unwrap();
        assert_eq!(out.as_slice::<f32>().unwrap(), want.f32_slice().unwrap());
    }

    #[test]
    fn standalone_quant_dequant() {
        let t = Tensor::random(&[40], DataType::F32, 11);
        let p = gc_tensor::QuantParams::new(0.02, 128);
        let f = lower_standalone(
            &OpKind::Quantize {
                dtype: DataType::U8,
                params: p,
            },
            &[t.desc()],
            &TensorDesc::new([40usize], DataType::U8),
            None,
            "q",
        );
        let out = run1(
            f,
            vec![Storage::F32(t.f32_slice().unwrap().to_vec())],
            Storage::U8(vec![0; 40]),
        );
        let want = reference::quantize(&t, DataType::U8, p).unwrap();
        // reciprocal-multiply rounding may differ by 1 at boundaries
        for (a, b) in out
            .as_slice::<u8>()
            .unwrap()
            .iter()
            .zip(want.u8_slice().unwrap())
        {
            assert!((*a as i32 - *b as i32).abs() <= 1);
        }
    }

    #[test]
    fn scalar_rhs_binary() {
        let t = Tensor::random(&[10], DataType::F32, 12);
        let sdesc = TensorDesc::new(Vec::<usize>::new(), DataType::F32);
        let f = lower_standalone(
            &OpKind::Binary(BinaryKind::Mul),
            &[t.desc(), &sdesc],
            t.desc(),
            Some(2.5),
            "muls",
        );
        // scalar path only takes 2 params (in/out)
        assert_eq!(f.params.len(), 2);
        let out = run1(
            f,
            vec![Storage::F32(t.f32_slice().unwrap().to_vec())],
            Storage::F32(vec![0.; 10]),
        );
        for (o, x) in out
            .as_slice::<f32>()
            .unwrap()
            .iter()
            .zip(t.f32_slice().unwrap())
        {
            assert_eq!(*o, x * 2.5);
        }
    }
}
