//! The microkernel-based matmul template (paper Figures 2–4).
//!
//! One instantiation lowers a Fused OP — a (possibly batched, possibly
//! int8) matmul plus its fused pre-ops and post-ops — into one Tensor IR
//! function:
//!
//! ```text
//! parallel loop t in 0..batch*MPN*NPN {          // multi-core kernel
//!   (batch_idx, mpi, npi) = decompose(t)
//!   [anchor#2: pack task's B slice / A slice]
//!   loop msi in 0..MSN {                         // single-core kernel
//!     C'[nsi,:,:] = 0
//!     loop kchunk in 0..KSN/BS {
//!       [anchor#4: pack A chunk]                 // Figure 4 pre-op
//!       loop nsi in 0..NSN {
//!         C'[nsi] += batch_reduce_gemm(A tiles, B tiles, BS)
//!       }
//!     }
//!     [anchor#1 post-ops: int8 epilogue, eltwise stages split at
//!      reductions, output write]                 // Figure 4 post-ops
//!   }
//! }
//! ```

use crate::anchors::{choose_a_pack, PackPlacement, PostOpAnchor};
use crate::params::{EdgePolicy, MatmulParams, MatmulProblem};
use gc_machine::MachineDescriptor;
use gc_microkernel::{BinaryOp, UnaryOp};
use gc_tensor::DataType;
use gc_tir::{AxisClamp, BufDecl, BufId, Expr, Func, Intrinsic, ReduceOp, Stmt, VarId, View};

/// Int8 epilogue attributes (from the low-precision conversion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Spec {
    /// Activation zero point.
    pub a_zero: i32,
    /// Combined scale `a_s * b_s`.
    pub scale: f32,
}

/// How the activation operand arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AInput {
    /// Already blocked `[.., M/MB, K/KB, MB, KB]` matching the params.
    Blocked,
    /// Plain row-major; the template fuses the pack as a pre-op.
    Plain,
}

/// How the weight/rhs operand arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BInput {
    /// Preprocessed blocked weight `[K/KB, N/NB, NB, KB]` (runtime
    /// constant; shared across the batch).
    BlockedWeight,
    /// Plain, batched, variable rhs (MHA); packed per task as a fused
    /// pre-op. `transposed` means the logical rhs is the transpose of
    /// the buffer (`Q x K^T` — the fused transpose is free inside the
    /// pack).
    PlainInLoop {
        /// Whether the rhs buffer holds `B^T` rather than `B`.
        transposed: bool,
    },
}

/// Output placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutLayout {
    /// Blocked `[.., M/MB, N/NB, MB, NB]` matching the params.
    BlockedMbNb,
    /// Plain row-major (unpack fused as the final post-op).
    Plain,
}

/// One fused post-op, in tile form.
#[derive(Debug, Clone, PartialEq)]
pub enum PostOpSpec {
    /// Elementwise unary.
    Unary(UnaryOp),
    /// Elementwise binary with a compile-time scalar rhs.
    BinaryScalarConst(BinaryOp, f32),
    /// Binary with a `[N]` (or batch-indexed `[.., N]`) vector operand,
    /// broadcast over rows; the operand is a function parameter.
    BinaryRowVec {
        /// Operation.
        op: BinaryOp,
        /// Operand carries leading batch dims (offset by batch index).
        batch_indexed: bool,
    },
    /// Binary with a full-shape plain operand parameter.
    BinaryFull {
        /// Operation.
        op: BinaryOp,
    },
    /// Row reduction along n (softmax max/sum); its result feeds later
    /// [`PostOpSpec::BinaryColStat`] ops. Requires `npn == 1`.
    ReduceRow(ReduceOp),
    /// Binary whose rhs is the most recent reduction's per-row result.
    BinaryColStat {
        /// Operation.
        op: BinaryOp,
    },
    /// Final requantization to u8.
    Quantize {
        /// Scale.
        scale: f32,
        /// Zero point.
        zero_point: i32,
    },
}

impl PostOpSpec {
    /// Whether this op consumes an extra function parameter.
    pub fn takes_param(&self) -> bool {
        matches!(
            self,
            PostOpSpec::BinaryRowVec { .. } | PostOpSpec::BinaryFull { .. }
        )
    }
}

/// Complete specification of one Fused OP to lower.
#[derive(Debug, Clone, PartialEq)]
pub struct MatmulSpec {
    /// Problem sizes.
    pub problem: MatmulProblem,
    /// Template parameters.
    pub params: MatmulParams,
    /// Int8 epilogue (None = f32 matmul).
    pub int8: Option<Int8Spec>,
    /// Bias added right after the (de-quantized) accumulator, length
    /// `[N]`, as a function parameter.
    pub bias: bool,
    /// Activation arrival.
    pub a_input: AInput,
    /// Rhs arrival.
    pub b_input: BInput,
    /// Fused post-ops, in order.
    pub post_ops: Vec<PostOpSpec>,
    /// Output placement.
    pub out: OutLayout,
    /// Output dtype (`F32`, or `U8` when the chain ends in Quantize).
    pub out_dtype: DataType,
    /// Post-op anchor (None = cost-model choice).
    pub forced_post_anchor: Option<PostOpAnchor>,
    /// A-pack anchor (None = cost-model choice).
    pub forced_pack: Option<PackPlacement>,
}

/// Role of each function parameter, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamRole {
    /// Activation input.
    A,
    /// Rhs input.
    B,
    /// Int8 compensation vector `[N]` (i32).
    Comp,
    /// Bias vector `[N]`.
    Bias,
    /// Extra operand of post-op `i`.
    PostOperand(usize),
    /// Output.
    Out,
}

/// A lowered template: the function plus its parameter roles.
#[derive(Debug, Clone)]
pub struct LoweredMatmul {
    /// The Tensor IR function.
    pub func: Func,
    /// Role of each parameter.
    pub roles: Vec<ParamRole>,
}

struct Ctx {
    // sizes
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    p: MatmulParams,
    msn: usize,
    nsn: usize,
    kch: usize,
    m_tiles: usize,
    n_tiles: usize,
    k_tiles: usize,
    tasks_per_mat: usize,
    total_tasks: usize,
    int8: Option<Int8Spec>,
    // edge-tile state: which axes have a partial (padded or clamped)
    // edge tile. Tile counts above are ceil-based, so when a flag is
    // set the corresponding `*_tiles * block` exceeds the logical size.
    ragged_m: bool,
    ragged_n: bool,
    ragged_k: bool,
}

impl Ctx {
    fn new(prob: &MatmulProblem, p: MatmulParams, int8: Option<Int8Spec>) -> Self {
        Ctx {
            m: prob.m,
            n: prob.n,
            k: prob.k,
            batch: prob.batch,
            p,
            msn: p.msn(prob.m),
            nsn: p.nsn(prob.n),
            kch: p.k_chunks(prob.k),
            m_tiles: p.m_tiles(prob.m),
            n_tiles: p.n_tiles(prob.n),
            k_tiles: p.ksn(prob.k),
            tasks_per_mat: p.tasks(),
            total_tasks: prob.batch * p.tasks(),
            int8,
            ragged_m: p.ragged_m(prob.m),
            ragged_n: p.ragged_n(prob.n),
            ragged_k: p.ragged_k(prob.k),
        }
    }

    fn ragged(&self) -> bool {
        self.ragged_m || self.ragged_n || self.ragged_k
    }
}

/// Lower one [`MatmulSpec`] into a Tensor IR function.
///
/// # Panics
///
/// Panics if the params do not validate against the problem, or a
/// reduction post-op is used with `npn != 1`.
pub fn lower_matmul(machine: &MachineDescriptor, spec: &MatmulSpec, name: &str) -> LoweredMatmul {
    spec.params
        .validate(&spec.problem)
        .expect("params must tile the problem");
    if spec.params.kpn > 1 {
        return lower_matmul_ksliced(machine, spec, name);
    }
    let has_reduce = spec
        .post_ops
        .iter()
        .any(|p| matches!(p, PostOpSpec::ReduceRow(_)));
    assert!(
        !has_reduce || spec.params.npn == 1,
        "row reductions require npn == 1"
    );

    let p = spec.params;
    let prob = spec.problem;
    let ctx = Ctx::new(&prob, p, spec.int8);
    if ctx.ragged() {
        // Edge tiles exist only on the padded-blocked-weight fast path:
        // B must already be zero-padded to whole [KB, NB] tiles (the
        // pack-time padding done by the weight prepack), A is packed
        // through the zero-filling Pack2DPad, and the plain output is
        // written through the clamped unpack. Every other combination
        // still requires exact divisibility.
        assert!(
            matches!(spec.b_input, BInput::BlockedWeight),
            "ragged shapes require a prepacked (pad-to-tile) blocked weight"
        );
        assert!(
            matches!(spec.a_input, AInput::Plain),
            "ragged shapes require a plain activation input"
        );
        assert!(
            !has_reduce,
            "ragged shapes do not support reduction post-ops"
        );
    }
    if ctx.ragged_m || ctx.ragged_n {
        // A ragged k only pads the reduction (zero products); ragged m/n
        // additionally put pad rows/columns in C, which only the plain
        // clamped output store can discard.
        assert_eq!(
            spec.out,
            OutLayout::Plain,
            "ragged m/n edges require a plain output layout"
        );
        assert!(
            !spec
                .post_ops
                .iter()
                .any(|q| matches!(q, PostOpSpec::BinaryFull { .. })),
            "full-tensor binary post-ops cannot read past the logical edge"
        );
    }
    if ctx.ragged_n {
        assert!(
            !spec.bias
                && !spec
                    .post_ops
                    .iter()
                    .any(|q| matches!(q, PostOpSpec::BinaryRowVec { .. })),
            "row-vector operands are sized [N] and cannot cover a padded n edge"
        );
    }

    let acc_dtype = if spec.int8.is_some() {
        DataType::I32
    } else {
        DataType::F32
    };
    let in_dtype = if spec.int8.is_some() {
        DataType::U8
    } else {
        DataType::F32
    };
    let w_dtype = if spec.int8.is_some() {
        DataType::I8
    } else {
        DataType::F32
    };

    let (params, roles) = build_params(spec, &ctx);

    let mut func = Func {
        name: name.to_string(),
        params,
        locals: vec![],
        var_count: 0,
        body: vec![],
    };
    let param_of = |role: ParamRole| -> BufId {
        BufId::Param(roles.iter().position(|&r| r == role).expect("role"))
    };

    // ---- locals
    let post_anchor = spec
        .forced_post_anchor
        .unwrap_or_else(|| crate::anchors::choose_post_anchor(machine, &p, &prob));
    // m-tiles buffered before post-processing: 1 for P1, MSN for P2
    let buf_msn = match post_anchor {
        PostOpAnchor::P1 => 1,
        _ => ctx.msn,
    };
    let tile = p.mb * p.nb;
    let cprime = func.add_local(BufDecl::new(
        acc_dtype,
        ctx.total_tasks * buf_msn * ctx.nsn * tile,
        "cprime",
    ));
    let cpf = if spec.int8.is_some() {
        func.add_local(BufDecl::new(
            DataType::F32,
            ctx.total_tasks * buf_msn * ctx.nsn * tile,
            "cprime_f32",
        ))
    } else {
        cprime
    };
    let pack_place = match spec.a_input {
        AInput::Plain => Some(
            spec.forced_pack
                .unwrap_or_else(|| choose_a_pack(machine, &p, &prob)),
        ),
        AInput::Blocked => None,
    };
    let aprime = pack_place.map(|pp| {
        let elems = match pp {
            PackPlacement::PerKChunk => ctx.total_tasks * p.bs * p.mb * p.kb,
            PackPlacement::PerTask => ctx.total_tasks * ctx.msn * ctx.k_tiles * p.mb * p.kb,
        };
        func.add_local(BufDecl::new(in_dtype, elems, "aprime"))
    });
    let bprime = match spec.b_input {
        BInput::PlainInLoop { .. } => Some(func.add_local(BufDecl::new(
            w_dtype,
            ctx.total_tasks * ctx.k_tiles * ctx.nsn * p.nb * p.kb,
            "bprime",
        ))),
        BInput::BlockedWeight => None,
    };
    let n_reductions = spec
        .post_ops
        .iter()
        .filter(|p| matches!(p, PostOpSpec::ReduceRow(_)))
        .count();
    let rowstats: Vec<BufId> = (0..n_reductions)
        .map(|i| {
            func.add_local(BufDecl::new(
                DataType::F32,
                ctx.total_tasks * buf_msn * p.mb,
                format!("rowstat{i}"),
            ))
        })
        .collect();
    // scratch tile for quantize-then-unpack
    let needs_qtile = spec.out_dtype == DataType::U8 && spec.out == OutLayout::Plain;
    let qtile = if needs_qtile {
        Some(func.add_local(BufDecl::new(DataType::U8, ctx.total_tasks * tile, "qtile")))
    } else {
        None
    };

    // ---- variables
    let t = func.fresh_var();
    let msi = func.fresh_var();
    let kchunk = func.fresh_var();
    let nsi = func.fresh_var();
    let bsi = func.fresh_var();
    let nsi2 = func.fresh_var(); // post-processing sweeps

    let e = ExprBuilder {
        ctx: &ctx,
        t,
        msi,
        kchunk,
        nsi,
        bsi,
    };

    // ---- body
    let mut task_body: Vec<Stmt> = Vec::new();

    // anchor #2: pack the task's B slice (MHA in-loop rhs)
    if let Some(bp) = bprime {
        let transposed = matches!(spec.b_input, BInput::PlainInLoop { transposed: true });
        task_body.push(e.pack_b_per_task(param_of(ParamRole::B), bp, transposed));
    }
    // anchor #2 variant for A (PerTask pack)
    if let (Some(ap), Some(PackPlacement::PerTask)) = (aprime, pack_place) {
        task_body.push(e.pack_a_per_task(param_of(ParamRole::A), ap, msi, kchunk, bsi));
    }

    // ---- single-core kernel: loop msi
    let mut msi_body: Vec<Stmt> = Vec::new();

    // zero accumulators for this m-tile
    let acc_view_all = |e: &ExprBuilder<'_>| {
        View::new(
            cprime,
            e.cprime_base(buf_msn).mul(Expr::from(ctx.nsn * tile)),
            ctx.nsn * tile,
        )
    };
    if spec.int8.is_some() {
        msi_body.push(Stmt::Op(Intrinsic::ZeroI32 {
            dst: acc_view_all(&e),
        }));
    } else {
        msi_body.push(Stmt::Op(Intrinsic::FillF32 {
            dst: acc_view_all(&e),
            value: 0.0,
        }));
    }

    // k loop with anchor #4 pack and nsi brgemm loop
    let mut kchunk_body: Vec<Stmt> = Vec::new();
    if let (Some(ap), Some(PackPlacement::PerKChunk)) = (aprime, pack_place) {
        kchunk_body.push(e.pack_a_per_chunk(param_of(ParamRole::A), ap, bsi));
    }
    // brgemm over nsi
    let a_view_stride = match (spec.a_input, pack_place) {
        (AInput::Blocked, _) => {
            let off = e.a_blocked_tile_base().mul(Expr::from(p.mb * p.kb));
            (
                View::new(param_of(ParamRole::A), off, p.mb * p.kb),
                p.mb * p.kb,
            )
        }
        (AInput::Plain, Some(PackPlacement::PerKChunk)) => (
            View::new(
                aprime.unwrap(),
                Expr::v(t).mul(Expr::from(p.bs * p.mb * p.kb)),
                p.mb * p.kb,
            ),
            p.mb * p.kb,
        ),
        (AInput::Plain, Some(PackPlacement::PerTask)) => {
            // [task][msi][k_tile][MB*KB]
            let off = Expr::v(t)
                .mul(Expr::from(ctx.msn * ctx.k_tiles))
                .add(Expr::v(msi).mul(Expr::from(ctx.k_tiles)))
                .add(Expr::v(kchunk).mul(Expr::from(p.bs)))
                .mul(Expr::from(p.mb * p.kb));
            (View::new(aprime.unwrap(), off, p.mb * p.kb), p.mb * p.kb)
        }
        (AInput::Plain, None) => unreachable!(),
    };
    let (b_view, b_stride) = match spec.b_input {
        BInput::BlockedWeight => {
            // [K/KB, N/NB, NB, KB]: tile(kt, npsi)
            let off = Expr::v(kchunk)
                .mul(Expr::from(p.bs))
                .mul(Expr::from(ctx.n_tiles))
                .add(e.npsi(nsi))
                .mul(Expr::from(p.nb * p.kb));
            (
                View::new(param_of(ParamRole::B), off, p.nb * p.kb),
                ctx.n_tiles * p.nb * p.kb,
            )
        }
        BInput::PlainInLoop { .. } => {
            // bprime: [task][k_tile][nsi][NB*KB]
            let off = Expr::v(t)
                .mul(Expr::from(ctx.k_tiles * ctx.nsn))
                .add(Expr::v(kchunk).mul(Expr::from(p.bs * ctx.nsn)))
                .add(Expr::v(nsi))
                .mul(Expr::from(p.nb * p.kb));
            (
                View::new(bprime.unwrap(), off, p.nb * p.kb),
                ctx.nsn * p.nb * p.kb,
            )
        }
    };
    let c_tile_view = View::new(
        cprime,
        e.cprime_base(buf_msn)
            .mul(Expr::from(ctx.nsn))
            .add(Expr::v(nsi))
            .mul(Expr::from(tile)),
        tile,
    );
    let use_tail = ctx.ragged_m && p.edge == EdgePolicy::Tail;
    let m_clamp = || AxisClamp::new(e.mpsi(msi).mul(Expr::from(p.mb)), ctx.m);
    let brgemm = match (spec.int8.is_some(), use_tail) {
        (true, false) => Intrinsic::BrgemmU8I8 {
            a: a_view_stride.0.clone(),
            a_stride: a_view_stride.1,
            b: b_view,
            b_stride,
            c: c_tile_view,
            m: p.mb,
            n: p.nb,
            k: p.kb,
            batch: p.bs,
        },
        (true, true) => Intrinsic::BrgemmU8I8Tail {
            a: a_view_stride.0.clone(),
            a_stride: a_view_stride.1,
            b: b_view,
            b_stride,
            c: c_tile_view,
            m: p.mb,
            n: p.nb,
            k: p.kb,
            batch: p.bs,
            m_clamp: m_clamp(),
        },
        (false, false) => Intrinsic::BrgemmF32 {
            a: a_view_stride.0,
            a_stride: a_view_stride.1,
            b: b_view,
            b_stride,
            c: c_tile_view,
            m: p.mb,
            n: p.nb,
            k: p.kb,
            batch: p.bs,
        },
        (false, true) => Intrinsic::BrgemmF32Tail {
            a: a_view_stride.0,
            a_stride: a_view_stride.1,
            b: b_view,
            b_stride,
            c: c_tile_view,
            m: p.mb,
            n: p.nb,
            k: p.kb,
            batch: p.bs,
            m_clamp: m_clamp(),
        },
    };
    kchunk_body.push(Stmt::loop_(nsi, ctx.nsn, vec![Stmt::Op(brgemm)]));
    msi_body.push(Stmt::loop_(kchunk, ctx.kch, kchunk_body));

    // ---- post-op anchor #1 (or buffered for #2): emitted per m-tile
    if post_anchor == PostOpAnchor::P1 {
        msi_body.extend(emit_post_ops(
            spec, &ctx, &e, &param_of, cprime, cpf, &rowstats, qtile, nsi2, buf_msn,
        ));
    }

    task_body.push(Stmt::loop_(msi, ctx.msn, msi_body));

    // anchor #2/#3 post-ops: process all buffered m-tiles after the msi
    // loop (ablation path)
    if post_anchor != PostOpAnchor::P1 {
        let mut per_msi = emit_post_ops(
            spec, &ctx, &e, &param_of, cprime, cpf, &rowstats, qtile, nsi2, buf_msn,
        );
        let mut body = Vec::new();
        body.append(&mut per_msi);
        task_body.push(Stmt::loop_(msi, ctx.msn, body));
    }

    func.body
        .push(Stmt::parallel(t, ctx.total_tasks, task_body));

    LoweredMatmul { func, roles }
}

/// Declare the template function's parameters (shared by the plain and
/// k-sliced lowerings — the signature does not depend on `KPN`).
fn build_params(spec: &MatmulSpec, ctx: &Ctx) -> (Vec<BufDecl>, Vec<ParamRole>) {
    let in_dtype = if spec.int8.is_some() {
        DataType::U8
    } else {
        DataType::F32
    };
    let w_dtype = if spec.int8.is_some() {
        DataType::I8
    } else {
        DataType::F32
    };
    let mut params = Vec::new();
    let mut roles = Vec::new();
    params.push(BufDecl::new(in_dtype, ctx.batch * ctx.m * ctx.k, "A"));
    roles.push(ParamRole::A);
    let b_elems = match spec.b_input {
        // Prepacked blocked weight is padded to whole [KB, NB] tiles at
        // pack time; for exactly-tiled shapes this is just k * n.
        BInput::BlockedWeight => ctx.k_tiles * ctx.p.kb * ctx.n_tiles * ctx.p.nb,
        BInput::PlainInLoop { .. } => ctx.batch * ctx.k * ctx.n,
    };
    params.push(BufDecl::new(w_dtype, b_elems, "B"));
    roles.push(ParamRole::B);
    if spec.int8.is_some() {
        // Compensation follows the padded weight: one i32 per packed
        // column, zero in the pad region.
        params.push(BufDecl::new(DataType::I32, ctx.n_tiles * ctx.p.nb, "comp"));
        roles.push(ParamRole::Comp);
    }
    if spec.bias {
        params.push(BufDecl::new(DataType::F32, ctx.n, "bias"));
        roles.push(ParamRole::Bias);
    }
    for (i, po) in spec.post_ops.iter().enumerate() {
        match po {
            PostOpSpec::BinaryRowVec { batch_indexed, .. } => {
                let elems = if *batch_indexed {
                    ctx.batch * ctx.n
                } else {
                    ctx.n
                };
                params.push(BufDecl::new(DataType::F32, elems, format!("opnd{i}")));
                roles.push(ParamRole::PostOperand(i));
            }
            PostOpSpec::BinaryFull { .. } => {
                params.push(BufDecl::new(
                    DataType::F32,
                    ctx.batch * ctx.m * ctx.n,
                    format!("opnd{i}"),
                ));
                roles.push(ParamRole::PostOperand(i));
            }
            _ => {}
        }
    }
    params.push(BufDecl::new(
        spec.out_dtype,
        ctx.batch * ctx.m * ctx.n,
        "OUT",
    ));
    roles.push(ParamRole::Out);
    (params, roles)
}

/// Lower the k-sliced template variant (`KPN > 1`).
///
/// Two top-level parallel phases, separated by the implicit barrier
/// between parallel loops:
///
/// ```text
/// parallel t in 0..batch*MPN*NPN*KPN {        // widened pool
///   (task, kpi) = (t / KPN, t % KPN)
///   [pack this slice's A panels]
///   loop msi in 0..MSN {
///     kpart[t][msi] = 0
///     loop kchunk in 0..KCH/KPN {             // 1/KPN of the reduction
///       loop nsi in 0..NSN { kpart[t][msi][nsi] += brgemm(...) }
///     }
///   }
/// }
/// parallel t2 in 0..batch*MPN*NPN {           // reduction + epilogue
///   loop msi2 in 0..MSN {
///     C'[t2] = 0
///     loop kpi2 in 0..KPN { C'[t2] += kpart[t2*KPN + kpi2][msi2] }
///     [post-ops + output write, same anchor as the plain template]
///   }
/// }
/// ```
///
/// Each phase-1 worker owns one `[MSN, NSN, MB*NB]` slab of `kpart`
/// (f32, or i32 for u8×i8), so phase 1 is write-disjoint; phase 2 folds
/// the `KPN` partials per task and runs the unchanged fused epilogue.
/// Integer addition is associative, so the int8 path is bit-identical
/// to the unsliced template; f32 differs only by summation order.
///
/// Restricted to blocked-weight rhs and reduction-free post-op chains —
/// exactly the small-batch MLP matmuls whose `M_blocks × N_blocks`
/// underfill the pool (the heuristic only proposes `KPN > 1` there).
#[allow(clippy::too_many_lines)]
fn lower_matmul_ksliced(
    machine: &MachineDescriptor,
    spec: &MatmulSpec,
    name: &str,
) -> LoweredMatmul {
    assert!(
        matches!(spec.b_input, BInput::BlockedWeight),
        "k-slicing requires a blocked-weight rhs"
    );
    assert!(
        !spec
            .post_ops
            .iter()
            .any(|q| matches!(q, PostOpSpec::ReduceRow(_))),
        "k-slicing does not support reduction post-ops"
    );

    let p = spec.params;
    let prob = spec.problem;
    let ctx = Ctx::new(&prob, p, spec.int8);
    assert!(
        !ctx.ragged(),
        "k-slicing requires exact tiling (enforced by validate)"
    );
    let kpn = p.kpn;
    let k_tiles_slice = p.k_tiles_slice(prob.k);
    let kch_slice = p.k_chunks_slice(prob.k);
    let tile = p.mb * p.nb;

    let acc_dtype = if spec.int8.is_some() {
        DataType::I32
    } else {
        DataType::F32
    };
    let in_dtype = if spec.int8.is_some() {
        DataType::U8
    } else {
        DataType::F32
    };

    let (params, roles) = build_params(spec, &ctx);
    let mut func = Func {
        name: name.to_string(),
        params,
        locals: vec![],
        var_count: 0,
        body: vec![],
    };
    let param_of = |role: ParamRole| -> BufId {
        BufId::Param(roles.iter().position(|&r| r == role).expect("role"))
    };

    // ---- locals
    // per-slice partial accumulators: [phase-1 task][msi][nsi][MB*NB]
    let kpart = func.add_local(BufDecl::new(
        acc_dtype,
        ctx.total_tasks * kpn * ctx.msn * ctx.nsn * tile,
        "kpart",
    ));
    // phase-2 working accumulator; one m-tile row at a time (buf_msn=1)
    let cprime = func.add_local(BufDecl::new(
        acc_dtype,
        ctx.total_tasks * ctx.nsn * tile,
        "cprime",
    ));
    let cpf = if spec.int8.is_some() {
        func.add_local(BufDecl::new(
            DataType::F32,
            ctx.total_tasks * ctx.nsn * tile,
            "cprime_f32",
        ))
    } else {
        cprime
    };
    let pack_place = match spec.a_input {
        AInput::Plain => Some(
            spec.forced_pack
                .unwrap_or_else(|| choose_a_pack(machine, &p, &prob)),
        ),
        AInput::Blocked => None,
    };
    let aprime = pack_place.map(|pp| {
        let elems = match pp {
            PackPlacement::PerKChunk => ctx.total_tasks * kpn * p.bs * p.mb * p.kb,
            PackPlacement::PerTask => ctx.total_tasks * kpn * ctx.msn * k_tiles_slice * p.mb * p.kb,
        };
        func.add_local(BufDecl::new(in_dtype, elems, "aprime"))
    });
    let needs_qtile = spec.out_dtype == DataType::U8 && spec.out == OutLayout::Plain;
    let qtile = needs_qtile
        .then(|| func.add_local(BufDecl::new(DataType::U8, ctx.total_tasks * tile, "qtile")));

    // ---- phase 1: widened accumulation over k slices
    let t = func.fresh_var();
    let msi = func.fresh_var();
    let kchunk = func.fresh_var();
    let nsi = func.fresh_var();
    let bsi = func.fresh_var();

    // phase-1 decomposition: t = task * KPN + kpi
    let t_mn = Expr::Div(Box::new(Expr::v(t)), Box::new(Expr::from(kpn)));
    let kpi = Expr::Rem(Box::new(Expr::v(t)), Box::new(Expr::from(kpn)));
    let batch_idx = if ctx.batch == 1 {
        Expr::c(0)
    } else {
        Expr::Div(
            Box::new(t_mn.clone()),
            Box::new(Expr::from(ctx.tasks_per_mat)),
        )
    };
    let task_in_mat = if ctx.batch == 1 {
        t_mn
    } else {
        Expr::Rem(
            Box::new(t_mn.clone()),
            Box::new(Expr::from(ctx.tasks_per_mat)),
        )
    };
    let mpi = if p.npn == 1 {
        task_in_mat.clone()
    } else {
        Expr::Div(Box::new(task_in_mat.clone()), Box::new(Expr::from(p.npn)))
    };
    let npi = if p.npn == 1 {
        Expr::c(0)
    } else {
        Expr::Rem(Box::new(task_in_mat), Box::new(Expr::from(p.npn)))
    };
    let mpsi = mpi.mul(Expr::from(ctx.msn)).add(Expr::v(msi));
    let npsi = npi.mul(Expr::from(ctx.nsn)).add(Expr::v(nsi));
    // first k-tile of this worker's slice
    let k0 = kpi.mul(Expr::from(k_tiles_slice));

    let mut task_body: Vec<Stmt> = Vec::new();
    if let (Some(ap), Some(PackPlacement::PerTask)) = (aprime, pack_place) {
        // anchor #2: pack this slice's A panels [task][msi][kt][MB*KB]
        let src_off = batch_idx
            .clone()
            .mul(Expr::from(ctx.m * ctx.k))
            .add(mpsi.clone().mul(Expr::from(p.mb * ctx.k)))
            .add(k0.clone().add(Expr::v(kchunk)).mul(Expr::from(p.kb)));
        let dst = View::new(
            ap,
            Expr::v(t)
                .mul(Expr::from(ctx.msn * k_tiles_slice))
                .add(Expr::v(msi).mul(Expr::from(k_tiles_slice)))
                .add(Expr::v(kchunk))
                .mul(Expr::from(p.mb * p.kb)),
            p.mb * p.kb,
        );
        task_body.push(Stmt::loop_(
            msi,
            ctx.msn,
            vec![Stmt::loop_(
                kchunk,
                k_tiles_slice,
                vec![Stmt::Op(Intrinsic::Pack2D {
                    src: param_of(ParamRole::A),
                    src_offset: src_off,
                    src_row_stride: ctx.k,
                    src_col_stride: 1,
                    dst,
                    rows: p.mb,
                    cols: p.kb,
                })],
            )],
        ));
    }

    let mut msi_body: Vec<Stmt> = Vec::new();
    let kpart_row = View::new(
        kpart,
        Expr::v(t)
            .mul(Expr::from(ctx.msn))
            .add(Expr::v(msi))
            .mul(Expr::from(ctx.nsn * tile)),
        ctx.nsn * tile,
    );
    if spec.int8.is_some() {
        msi_body.push(Stmt::Op(Intrinsic::ZeroI32 { dst: kpart_row }));
    } else {
        msi_body.push(Stmt::Op(Intrinsic::FillF32 {
            dst: kpart_row,
            value: 0.0,
        }));
    }

    let mut kchunk_body: Vec<Stmt> = Vec::new();
    if let (Some(ap), Some(PackPlacement::PerKChunk)) = (aprime, pack_place) {
        // anchor #4: pack one BS-chunk of this worker's slice
        let src_off = batch_idx
            .clone()
            .mul(Expr::from(ctx.m * ctx.k))
            .add(mpsi.clone().mul(Expr::from(p.mb * ctx.k)))
            .add(
                k0.clone()
                    .add(Expr::v(kchunk).mul(Expr::from(p.bs)))
                    .add(Expr::v(bsi))
                    .mul(Expr::from(p.kb)),
            );
        let dst = View::new(
            ap,
            Expr::v(t)
                .mul(Expr::from(p.bs))
                .add(Expr::v(bsi))
                .mul(Expr::from(p.mb * p.kb)),
            p.mb * p.kb,
        );
        kchunk_body.push(Stmt::loop_(
            bsi,
            p.bs,
            vec![Stmt::Op(Intrinsic::Pack2D {
                src: param_of(ParamRole::A),
                src_offset: src_off,
                src_row_stride: ctx.k,
                src_col_stride: 1,
                dst,
                rows: p.mb,
                cols: p.kb,
            })],
        ));
    }
    let (a_view, a_stride) = match (spec.a_input, pack_place) {
        (AInput::Blocked, _) => {
            // A blocked [.., M/MB, K/KB, MB, KB]: first tile of the
            // chunk sits at k-tile `k0 + kchunk*BS`
            let off = batch_idx
                .clone()
                .mul(Expr::from(ctx.m_tiles))
                .add(mpsi.clone())
                .mul(Expr::from(ctx.k_tiles))
                .add(k0.clone())
                .add(Expr::v(kchunk).mul(Expr::from(p.bs)))
                .mul(Expr::from(p.mb * p.kb));
            (
                View::new(param_of(ParamRole::A), off, p.mb * p.kb),
                p.mb * p.kb,
            )
        }
        (AInput::Plain, Some(PackPlacement::PerKChunk)) => (
            View::new(
                aprime.unwrap(),
                Expr::v(t).mul(Expr::from(p.bs * p.mb * p.kb)),
                p.mb * p.kb,
            ),
            p.mb * p.kb,
        ),
        (AInput::Plain, Some(PackPlacement::PerTask)) => {
            let off = Expr::v(t)
                .mul(Expr::from(ctx.msn * k_tiles_slice))
                .add(Expr::v(msi).mul(Expr::from(k_tiles_slice)))
                .add(Expr::v(kchunk).mul(Expr::from(p.bs)))
                .mul(Expr::from(p.mb * p.kb));
            (View::new(aprime.unwrap(), off, p.mb * p.kb), p.mb * p.kb)
        }
        (AInput::Plain, None) => unreachable!(),
    };
    // blocked weight [K/KB, N/NB, NB, KB]: tile (k0 + kchunk*BS, npsi)
    let b_off = k0
        .clone()
        .add(Expr::v(kchunk).mul(Expr::from(p.bs)))
        .mul(Expr::from(ctx.n_tiles))
        .add(npsi)
        .mul(Expr::from(p.nb * p.kb));
    let b_view = View::new(param_of(ParamRole::B), b_off, p.nb * p.kb);
    let b_stride = ctx.n_tiles * p.nb * p.kb;
    let c_tile = View::new(
        kpart,
        Expr::v(t)
            .mul(Expr::from(ctx.msn))
            .add(Expr::v(msi))
            .mul(Expr::from(ctx.nsn))
            .add(Expr::v(nsi))
            .mul(Expr::from(tile)),
        tile,
    );
    let brgemm = if spec.int8.is_some() {
        Intrinsic::BrgemmU8I8 {
            a: a_view,
            a_stride,
            b: b_view,
            b_stride,
            c: c_tile,
            m: p.mb,
            n: p.nb,
            k: p.kb,
            batch: p.bs,
        }
    } else {
        Intrinsic::BrgemmF32 {
            a: a_view,
            a_stride,
            b: b_view,
            b_stride,
            c: c_tile,
            m: p.mb,
            n: p.nb,
            k: p.kb,
            batch: p.bs,
        }
    };
    kchunk_body.push(Stmt::loop_(nsi, ctx.nsn, vec![Stmt::Op(brgemm)]));
    msi_body.push(Stmt::loop_(kchunk, kch_slice, kchunk_body));
    task_body.push(Stmt::loop_(msi, ctx.msn, msi_body));
    func.body
        .push(Stmt::parallel(t, ctx.total_tasks * kpn, task_body));

    // ---- phase 2: fold the KPN partials per task, then the epilogue
    let t2 = func.fresh_var();
    let msi2 = func.fresh_var();
    let kpi2 = func.fresh_var();
    let nsi2 = func.fresh_var();
    let bsi2 = func.fresh_var();
    let e2 = ExprBuilder {
        ctx: &ctx,
        t: t2,
        msi: msi2,
        kchunk: kpi2,
        nsi: nsi2,
        bsi: bsi2,
    };

    let mut m_body: Vec<Stmt> = Vec::new();
    let acc_all = View::new(
        cprime,
        Expr::v(t2).mul(Expr::from(ctx.nsn * tile)),
        ctx.nsn * tile,
    );
    if spec.int8.is_some() {
        m_body.push(Stmt::Op(Intrinsic::ZeroI32 {
            dst: acc_all.clone(),
        }));
    } else {
        m_body.push(Stmt::Op(Intrinsic::FillF32 {
            dst: acc_all.clone(),
            value: 0.0,
        }));
    }
    let part_slice = View::new(
        kpart,
        Expr::v(t2)
            .mul(Expr::from(kpn))
            .add(Expr::v(kpi2))
            .mul(Expr::from(ctx.msn))
            .add(Expr::v(msi2))
            .mul(Expr::from(ctx.nsn * tile)),
        ctx.nsn * tile,
    );
    let fold = if spec.int8.is_some() {
        Intrinsic::AddI32 {
            src: part_slice,
            dst: acc_all,
        }
    } else {
        Intrinsic::AddF32 {
            src: part_slice,
            dst: acc_all,
        }
    };
    m_body.push(Stmt::loop_(kpi2, kpn, vec![Stmt::Op(fold)]));
    m_body.extend(emit_post_ops(
        spec,
        &ctx,
        &e2,
        &param_of,
        cprime,
        cpf,
        &[],
        qtile,
        nsi2,
        1,
    ));
    func.body.push(Stmt::parallel(
        t2,
        ctx.total_tasks,
        vec![Stmt::loop_(msi2, ctx.msn, m_body)],
    ));

    LoweredMatmul { func, roles }
}

/// Emits the staged post-op pipeline for the current m-tile.
#[allow(clippy::too_many_arguments)]
fn emit_post_ops(
    spec: &MatmulSpec,
    ctx: &Ctx,
    e: &ExprBuilder<'_>,
    param_of: &dyn Fn(ParamRole) -> BufId,
    cprime: BufId,
    cpf: BufId,
    rowstats: &[BufId],
    qtile: Option<BufId>,
    nsi2: VarId,
    buf_msn: usize,
) -> Vec<Stmt> {
    let p = ctx.p;
    let tile = p.mb * p.nb;
    let mut stmts = Vec::new();

    let cpf_tile = |nv: VarId| {
        View::new(
            cpf,
            e.cprime_base(buf_msn)
                .mul(Expr::from(ctx.nsn))
                .add(Expr::v(nv))
                .mul(Expr::from(tile)),
            tile,
        )
    };

    // stage -1: int8 epilogue (+ bias folded in)
    if let Some(int8) = ctx.int8 {
        let acc_tile = View::new(
            cprime,
            e.cprime_base(buf_msn)
                .mul(Expr::from(ctx.nsn))
                .add(Expr::v(nsi2))
                .mul(Expr::from(tile)),
            tile,
        );
        let comp_view = View::new(
            param_of(ParamRole::Comp),
            e.npsi(nsi2).mul(Expr::from(p.nb)),
            p.nb,
        );
        let bias = spec.bias.then(|| {
            View::new(
                param_of(ParamRole::Bias),
                e.npsi(nsi2).mul(Expr::from(p.nb)),
                p.nb,
            )
        });
        stmts.push(Stmt::loop_(
            nsi2,
            ctx.nsn,
            vec![Stmt::Op(Intrinsic::DequantAcc {
                acc: acc_tile,
                comp: comp_view,
                a_zero: int8.a_zero,
                scale: int8.scale,
                bias,
                dst: cpf_tile(nsi2),
                rows: p.mb,
                cols: p.nb,
            })],
        ));
    } else if spec.bias {
        let bias_view = View::new(
            param_of(ParamRole::Bias),
            e.npsi(nsi2).mul(Expr::from(p.nb)),
            p.nb,
        );
        stmts.push(Stmt::loop_(
            nsi2,
            ctx.nsn,
            vec![Stmt::Op(Intrinsic::BinaryRowBcast {
                op: BinaryOp::Add,
                a: cpf_tile(nsi2),
                b: bias_view,
                dst: cpf_tile(nsi2),
                rows: p.mb,
                cols: p.nb,
            })],
        ));
    }

    // split post-ops into stages at reductions
    let mut stages: Vec<Vec<&PostOpSpec>> = vec![Vec::new()];
    let mut reduce_of_stage: Vec<Option<(usize, ReduceOp)>> = Vec::new();
    let mut ridx = 0usize;
    for po in &spec.post_ops {
        if let PostOpSpec::ReduceRow(op) = po {
            reduce_of_stage.push(Some((ridx, *op)));
            ridx += 1;
            stages.push(Vec::new());
        } else {
            stages.last_mut().unwrap().push(po);
        }
    }
    reduce_of_stage.push(None);

    let rowstat_view = |r: usize| {
        View::new(
            rowstats[r],
            e.cprime_base(buf_msn).mul(Expr::from(p.mb)),
            p.mb,
        )
    };

    let n_stages = stages.len();
    let mut current_stat: Option<usize> = None;
    for (si, stage) in stages.iter().enumerate() {
        let is_last = si + 1 == n_stages;
        let mut sweep: Vec<Stmt> = Vec::new();
        for po in stage {
            let tile_v = cpf_tile(nsi2);
            let stmt = match po {
                PostOpSpec::Unary(op) => Intrinsic::Unary {
                    op: *op,
                    src: tile_v.clone(),
                    dst: tile_v,
                },
                PostOpSpec::BinaryScalarConst(op, s) => Intrinsic::BinaryScalar {
                    op: *op,
                    a: tile_v.clone(),
                    scalar: *s,
                    dst: tile_v,
                },
                PostOpSpec::BinaryRowVec { op, batch_indexed } => {
                    let pi = spec
                        .post_ops
                        .iter()
                        .position(|x| std::ptr::eq(x, *po))
                        .unwrap();
                    let base = if *batch_indexed {
                        e.batch_idx().mul(Expr::from(ctx.n))
                    } else {
                        Expr::c(0)
                    };
                    Intrinsic::BinaryRowBcast {
                        op: *op,
                        a: tile_v.clone(),
                        b: View::new(
                            param_of(ParamRole::PostOperand(pi)),
                            base.add(e.npsi(nsi2).mul(Expr::from(p.nb))),
                            p.nb,
                        ),
                        dst: tile_v,
                        rows: p.mb,
                        cols: p.nb,
                    }
                }
                PostOpSpec::BinaryFull { op } => {
                    // pack the operand tile from its plain buffer lazily:
                    // use Pack2D into qtile-sized scratch is avoided by
                    // reading strided via Pack2D into a dedicated tile;
                    // to keep the template lean we require the operand
                    // plain and apply row by row through Unpack-style
                    // strided access. Simplest correct approach: pack
                    // into the (f32) rowstat-sized... use a Binary with
                    // a packed tile is required -> use Pack2D into the
                    // cprime_f32 of a scratch region is unsafe; instead
                    // we emit per-row BinaryRowBcast over the operand's
                    // row slices.
                    let pi = spec
                        .post_ops
                        .iter()
                        .position(|x| std::ptr::eq(x, *po))
                        .unwrap();
                    // operand plain [.., M, N]: row r of tile = offset
                    // batch*M*N + (mpsi*MB + r)*N + npsi*NB. Emit a
                    // per-tile strided binary via rows loop unrolled in
                    // the executor: use BinaryRowBcast per row is wrong
                    // (rhs varies per row) -> use Binary on each row.
                    // We express it as `rows` Binary calls via a serial
                    // loop variable reusing bsi.
                    let r = e.bsi;
                    let a_row = View::new(
                        cpf,
                        e.cprime_base(buf_msn)
                            .mul(Expr::from(ctx.nsn))
                            .add(Expr::v(nsi2))
                            .mul(Expr::from(tile))
                            .add(Expr::v(r).mul(Expr::from(p.nb))),
                        p.nb,
                    );
                    let opnd_row = View::new(
                        param_of(ParamRole::PostOperand(pi)),
                        e.batch_idx()
                            .mul(Expr::from(ctx.m * ctx.n))
                            .add(
                                e.mpsi(e.msi)
                                    .mul(Expr::from(p.mb))
                                    .add(Expr::v(r))
                                    .mul(Expr::from(ctx.n)),
                            )
                            .add(e.npsi(nsi2).mul(Expr::from(p.nb))),
                        p.nb,
                    );
                    sweep.push(Stmt::loop_(
                        r,
                        p.mb,
                        vec![Stmt::Op(Intrinsic::Binary {
                            op: *op,
                            a: a_row.clone(),
                            b: opnd_row,
                            dst: a_row,
                        })],
                    ));
                    continue;
                }
                PostOpSpec::BinaryColStat { op } => {
                    let stat = current_stat.expect("col-stat op needs a preceding reduction");
                    Intrinsic::BinaryColBcast {
                        op: *op,
                        a: tile_v.clone(),
                        b: rowstat_view(stat),
                        dst: tile_v,
                        rows: p.mb,
                        cols: p.nb,
                    }
                }
                PostOpSpec::Quantize { scale, zero_point } => {
                    // quantize happens as part of the output write below
                    // when it is the last op; otherwise into the same
                    // tile is impossible (dtype change), so it must be
                    // last — enforced by construction in lower_graph.
                    let _ = (scale, zero_point);
                    continue;
                }
                PostOpSpec::ReduceRow(_) => unreachable!("split into stages"),
            };
            sweep.push(Stmt::Op(stmt));
        }
        // reduction closing this stage
        if let Some((r, op)) = reduce_of_stage[si] {
            // init the accumulator before the sweep
            let init = match op {
                ReduceOp::Sum => 0.0,
                ReduceOp::Max => f32::NEG_INFINITY,
            };
            stmts.push(Stmt::Op(Intrinsic::FillF32 {
                dst: rowstat_view(r),
                value: init,
            }));
            sweep.push(Stmt::Op(Intrinsic::ReduceRows {
                op,
                src: cpf_tile(nsi2),
                acc: rowstat_view(r),
                rows: p.mb,
                cols: p.nb,
                accumulate: true,
            }));
            current_stat = Some(r);
        }
        // final stage: write the output tile
        if is_last {
            let quant = spec.post_ops.iter().find_map(|po| match po {
                PostOpSpec::Quantize { scale, zero_point } => Some((*scale, *zero_point)),
                _ => None,
            });
            sweep.extend(emit_out_write(
                spec,
                ctx,
                e,
                param_of,
                cpf_tile(nsi2),
                quant,
                qtile,
                nsi2,
            ));
        }
        if !sweep.is_empty() {
            stmts.push(Stmt::loop_(nsi2, ctx.nsn, sweep));
        }
    }
    stmts
}

#[allow(clippy::too_many_arguments)]
fn emit_out_write(
    spec: &MatmulSpec,
    ctx: &Ctx,
    e: &ExprBuilder<'_>,
    param_of: &dyn Fn(ParamRole) -> BufId,
    src_tile: View,
    quant: Option<(f32, i32)>,
    qtile: Option<BufId>,
    nsi2: VarId,
) -> Vec<Stmt> {
    let p = ctx.p;
    let tile = p.mb * p.nb;
    let out = param_of(ParamRole::Out);
    let mut stmts = Vec::new();
    match (spec.out, quant) {
        (OutLayout::BlockedMbNb, None) => {
            let off = e
                .batch_idx()
                .mul(Expr::from(ctx.m_tiles))
                .add(e.mpsi(e.msi))
                .mul(Expr::from(ctx.n_tiles))
                .add(e.npsi(nsi2))
                .mul(Expr::from(tile));
            stmts.push(Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Identity,
                src: src_tile,
                dst: View::new(out, off, tile),
            }));
        }
        (OutLayout::BlockedMbNb, Some((s, z))) => {
            let off = e
                .batch_idx()
                .mul(Expr::from(ctx.m_tiles))
                .add(e.mpsi(e.msi))
                .mul(Expr::from(ctx.n_tiles))
                .add(e.npsi(nsi2))
                .mul(Expr::from(tile));
            stmts.push(Stmt::Op(Intrinsic::QuantU8 {
                src: src_tile,
                dst: View::new(out, off, tile),
                scale: s,
                zero_point: z,
            }));
        }
        (OutLayout::Plain, None) => {
            stmts.push(Stmt::Op(unpack_out_tile(ctx, e, src_tile, out, nsi2)));
        }
        (OutLayout::Plain, Some((s, z))) => {
            let qt = qtile.expect("qtile allocated for plain u8 output");
            let qview = View::new(qt, Expr::v(e.t).mul(Expr::from(tile)), tile);
            stmts.push(Stmt::Op(Intrinsic::QuantU8 {
                src: src_tile,
                dst: qview.clone(),
                scale: s,
                zero_point: z,
            }));
            stmts.push(Stmt::Op(unpack_out_tile(ctx, e, qview, out, nsi2)));
        }
    }
    stmts
}

/// The plain-layout output store for the current tile: the exact
/// [`Intrinsic::Unpack2D`] when the shape tiles evenly, the clamped
/// [`Intrinsic::Unpack2DClamp`] (which skips pad rows/columns) when the
/// m or n edge is ragged.
fn unpack_out_tile(
    ctx: &Ctx,
    e: &ExprBuilder<'_>,
    src: View,
    out: BufId,
    nsi2: VarId,
) -> Intrinsic {
    let p = ctx.p;
    let batch_off = e.batch_idx().mul(Expr::from(ctx.m * ctx.n));
    if ctx.ragged_m || ctx.ragged_n {
        Intrinsic::Unpack2DClamp {
            src,
            dst: out,
            dst_offset: batch_off,
            dst_row_stride: ctx.n,
            dst_col_stride: 1,
            rows: p.mb,
            cols: p.nb,
            row_clamp: AxisClamp::new(e.mpsi(e.msi).mul(Expr::from(p.mb)), ctx.m),
            col_clamp: AxisClamp::new(e.npsi(nsi2).mul(Expr::from(p.nb)), ctx.n),
        }
    } else {
        Intrinsic::Unpack2D {
            src,
            dst: out,
            dst_offset: batch_off
                .add(e.mpsi(e.msi).mul(Expr::from(p.mb * ctx.n)))
                .add(e.npsi(nsi2).mul(Expr::from(p.nb))),
            dst_row_stride: ctx.n,
            dst_col_stride: 1,
            rows: p.mb,
            cols: p.nb,
        }
    }
}

/// Index-expression helpers shared by the emission code.
struct ExprBuilder<'c> {
    ctx: &'c Ctx,
    t: VarId,
    msi: VarId,
    kchunk: VarId,
    nsi: VarId,
    bsi: VarId,
}

impl ExprBuilder<'_> {
    fn batch_idx(&self) -> Expr {
        if self.ctx.batch == 1 {
            Expr::c(0)
        } else {
            Expr::Div(
                Box::new(Expr::v(self.t)),
                Box::new(Expr::from(self.ctx.tasks_per_mat)),
            )
        }
    }

    fn task_in_mat(&self) -> Expr {
        if self.ctx.batch == 1 {
            Expr::v(self.t)
        } else {
            Expr::Rem(
                Box::new(Expr::v(self.t)),
                Box::new(Expr::from(self.ctx.tasks_per_mat)),
            )
        }
    }

    fn mpi(&self) -> Expr {
        if self.ctx.p.npn == 1 {
            self.task_in_mat()
        } else {
            Expr::Div(
                Box::new(self.task_in_mat()),
                Box::new(Expr::from(self.ctx.p.npn)),
            )
        }
    }

    fn npi(&self) -> Expr {
        if self.ctx.p.npn == 1 {
            Expr::c(0)
        } else {
            Expr::Rem(
                Box::new(self.task_in_mat()),
                Box::new(Expr::from(self.ctx.p.npn)),
            )
        }
    }

    /// Global m-tile index of the current msi.
    fn mpsi(&self, msi: VarId) -> Expr {
        self.mpi().mul(Expr::from(self.ctx.msn)).add(Expr::v(msi))
    }

    /// Global n-tile index for an nsi-like variable.
    fn npsi(&self, nv: VarId) -> Expr {
        self.npi().mul(Expr::from(self.ctx.nsn)).add(Expr::v(nv))
    }

    /// Base index (in m-tile units) of cprime for the current (t, msi):
    /// `t * buf_msn + (msi % buf_msn)` — with `buf_msn == 1` the msi
    /// term vanishes.
    fn cprime_base(&self, buf_msn: usize) -> Expr {
        if buf_msn == 1 {
            Expr::v(self.t)
        } else {
            Expr::v(self.t)
                .mul(Expr::from(buf_msn))
                .add(Expr::v(self.msi))
        }
    }

    /// A blocked tile base (in tiles) for brgemm's first tile at
    /// (batch, mpsi, kchunk*BS).
    fn a_blocked_tile_base(&self) -> Expr {
        self.batch_idx()
            .mul(Expr::from(self.ctx.m_tiles))
            .add(self.mpsi(self.msi))
            .mul(Expr::from(self.ctx.k_tiles))
            .add(Expr::v(self.kchunk).mul(Expr::from(self.ctx.p.bs)))
    }

    /// The A-pack intrinsic for tile (row_base, col_base) of the plain
    /// `[M, K]` operand: the exact [`Intrinsic::Pack2D`] when the shape
    /// tiles evenly, the zero-filling [`Intrinsic::Pack2DPad`] when the
    /// m or k edge is ragged. Clamp bases carry the tile origin in axis
    /// units; the batch term stays in the flat offset.
    fn pack_a_tile(&self, a: BufId, dst: View, row_base: Expr, col_base: Expr) -> Intrinsic {
        let p = self.ctx.p;
        let batch_off = self.batch_idx().mul(Expr::from(self.ctx.m * self.ctx.k));
        if self.ctx.ragged_m || self.ctx.ragged_k {
            Intrinsic::Pack2DPad {
                src: a,
                src_offset: batch_off,
                src_row_stride: self.ctx.k,
                src_col_stride: 1,
                dst,
                rows: p.mb,
                cols: p.kb,
                row_clamp: AxisClamp::new(row_base, self.ctx.m),
                col_clamp: AxisClamp::new(col_base, self.ctx.k),
            }
        } else {
            Intrinsic::Pack2D {
                src: a,
                src_offset: batch_off
                    .add(row_base.mul(Expr::from(self.ctx.k)))
                    .add(col_base),
                src_row_stride: self.ctx.k,
                src_col_stride: 1,
                dst,
                rows: p.mb,
                cols: p.kb,
            }
        }
    }

    /// Pack one BS-chunk of plain A into aprime (anchor #4).
    fn pack_a_per_chunk(&self, a: BufId, aprime: BufId, bsi: VarId) -> Stmt {
        let p = self.ctx.p;
        let row_base = self.mpsi(self.msi).mul(Expr::from(p.mb));
        let col_base = Expr::v(self.kchunk)
            .mul(Expr::from(p.bs))
            .add(Expr::v(bsi))
            .mul(Expr::from(p.kb));
        let dst = View::new(
            aprime,
            Expr::v(self.t)
                .mul(Expr::from(p.bs))
                .add(Expr::v(bsi))
                .mul(Expr::from(p.mb * p.kb)),
            p.mb * p.kb,
        );
        Stmt::loop_(
            bsi,
            p.bs,
            vec![Stmt::Op(self.pack_a_tile(a, dst, row_base, col_base))],
        )
    }

    /// Pack the task's whole A slice at task start (anchor #2).
    fn pack_a_per_task(&self, a: BufId, aprime: BufId, msi: VarId, kt: VarId, _bsi: VarId) -> Stmt {
        let p = self.ctx.p;
        let row_base = self.mpsi(msi).mul(Expr::from(p.mb));
        let col_base = Expr::v(kt).mul(Expr::from(p.kb));
        let dst = View::new(
            aprime,
            Expr::v(self.t)
                .mul(Expr::from(self.ctx.msn * self.ctx.k_tiles))
                .add(Expr::v(msi).mul(Expr::from(self.ctx.k_tiles)))
                .add(Expr::v(kt))
                .mul(Expr::from(p.mb * p.kb)),
            p.mb * p.kb,
        );
        Stmt::loop_(
            msi,
            self.ctx.msn,
            vec![Stmt::loop_(
                kt,
                self.ctx.k_tiles,
                vec![Stmt::Op(self.pack_a_tile(a, dst, row_base, col_base))],
            )],
        )
    }

    /// Pack the task's B slice into `[k_tile][nsi][NB*KB]` panels
    /// (anchor #2; fuses an optional transpose for free).
    fn pack_b_per_task(&self, b: BufId, bprime: BufId, transposed: bool) -> Stmt {
        let p = self.ctx.p;
        let (kt, nv) = (self.kchunk, self.nsi);
        // element (n, k) of tile (kt, npsi):
        //   plain B[.., K, N]:  src[(kt*KB + k) * N + npsi*NB + n]
        //   transposed (buffer holds B^T = [.., N, K]):
        //                       src[(npsi*NB + n) * K + kt*KB + k]
        let (row_stride, col_stride, base) = if transposed {
            (
                self.ctx.k, // n advances rows of B^T
                1,          // k advances columns
                self.batch_idx()
                    .mul(Expr::from(self.ctx.k * self.ctx.n))
                    .add(self.npsi(nv).mul(Expr::from(p.nb * self.ctx.k)))
                    .add(Expr::v(kt).mul(Expr::from(p.kb))),
            )
        } else {
            (
                1,          // n advances columns of B
                self.ctx.n, // k advances rows
                self.batch_idx()
                    .mul(Expr::from(self.ctx.k * self.ctx.n))
                    .add(Expr::v(kt).mul(Expr::from(p.kb * self.ctx.n)))
                    .add(self.npsi(nv).mul(Expr::from(p.nb))),
            )
        };
        let dst = View::new(
            bprime,
            Expr::v(self.t)
                .mul(Expr::from(self.ctx.k_tiles * self.ctx.nsn))
                .add(Expr::v(kt).mul(Expr::from(self.ctx.nsn)))
                .add(Expr::v(nv))
                .mul(Expr::from(p.nb * p.kb)),
            p.nb * p.kb,
        );
        Stmt::loop_(
            kt,
            self.ctx.k_tiles,
            vec![Stmt::loop_(
                nv,
                self.ctx.nsn,
                vec![Stmt::Op(Intrinsic::Pack2D {
                    src: b,
                    src_offset: base,
                    src_row_stride: row_stride,
                    src_col_stride: col_stride,
                    dst,
                    rows: p.nb,
                    cols: p.kb,
                })],
            )],
        )
    }
}
