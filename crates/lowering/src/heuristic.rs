//! The expert-tuned parameter heuristic.
//!
//! "For a given output matrix size, it first proposes single-core kernel
//! size options, a set of [MPN, NPN], which can use all cores with good
//! load balance. It further proposes microkernel size options, a set of
//! [MB, NB, KB, BS], which ensure good microkernel performance. Then the
//! heuristic picks a pair of these sizes [...] based on a cost model
//! which considers multi-core load balancing and single-core kernel
//! efficiency."

use crate::params::{divisors, EdgePolicy, MatmulParams, MatmulProblem};
use gc_machine::{cost, MachineDescriptor};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Constraints the surrounding graph imposes on the decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Constraints {
    /// Force `NPN = 1` (reduction post-ops along n, or membership in a
    /// coarse-fusion group whose members must share a row-only task
    /// decomposition).
    pub full_n_per_task: bool,
    /// Force a specific `MB` so chained fused ops share blocking.
    pub fixed_mb: Option<usize>,
    /// Force a specific `KB` (layout propagation: a chained matmul reads
    /// its producer's blocked output, so `KB` must equal the producer's
    /// `NB`).
    pub fixed_kb: Option<usize>,
    /// Force a specific task count (coarse-fusion groups share one
    /// parallel loop, so every member must decompose into the same
    /// number of tasks).
    pub fixed_tasks: Option<usize>,
    /// Permit `KPN > 1` (k-slicing): when `batch * MPN * NPN` underfills
    /// the thread pool, split the reduction across extra workers with
    /// per-slice partial accumulators and a second reduction phase.
    pub allow_k_slice: bool,
    /// Permit `MB` that does not divide m: the edge row of tiles is
    /// zero-padded at pack time or clamped by tail kernels, per the
    /// chosen [`EdgePolicy`]. Only safe when the lowering context can
    /// emit clamped packs/stores (plain A input, plain output).
    pub allow_ragged_m: bool,
    /// Permit `NB` that does not divide n (pad-and-go only: the
    /// prepacked weight and the int8 compensation are padded to whole
    /// `NB` panels; the clamped output store drops the pad columns).
    pub allow_ragged_n: bool,
    /// Permit `KB` that does not divide k (pad-and-go only: both the
    /// packed A tiles and the prepacked weight zero-fill the k tail, so
    /// the padded products contribute zero to the accumulator).
    pub allow_ragged_k: bool,
}

/// One recorded template-parameter decision: the problem, the
/// constraints the surrounding graph imposed, and the parameters the
/// search (or a tuned override) settled on. `(problem, constraints)`
/// is the stable identity of a choice point — it is what the tuning
/// database keys overrides by, and what [`ParamLog`] records so a
/// warm-started compile can be checked for bit-identical selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamChoice {
    /// The matmul problem at this choice point.
    pub problem: MatmulProblem,
    /// The constraints in effect when the choice was made.
    pub constraints: Constraints,
    /// The parameters chosen.
    pub params: MatmulParams,
}

/// A shared, thread-safe recorder of every parameter decision lowering
/// makes (observability hook for the tuning orchestrator and tests).
pub type ParamLog = Arc<Mutex<Vec<ParamChoice>>>;

/// Measured-tuning overrides: winners keyed by the exact
/// `(problem, constraints)` choice point they were measured under.
/// Lowering consults this map before running the analytic search, so a
/// tuned compile reproduces the measured parameters without
/// re-measuring anything.
#[derive(Debug, Clone, Default)]
pub struct ParamOverrides {
    map: HashMap<(MatmulProblem, Constraints), MatmulParams>,
}

impl ParamOverrides {
    /// An empty override set.
    pub fn new() -> Self {
        ParamOverrides::default()
    }

    /// Register (or replace) the override for one choice point.
    pub fn insert(
        &mut self,
        problem: MatmulProblem,
        constraints: Constraints,
        params: MatmulParams,
    ) {
        self.map.insert((problem, constraints), params);
    }

    /// The override for a choice point, if any.
    pub fn get(&self, problem: &MatmulProblem, constraints: &Constraints) -> Option<MatmulParams> {
        self.map.get(&(*problem, *constraints)).copied()
    }

    /// Number of overridden choice points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no overrides are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The canonical tie-break key: under equal projected cost the search
/// prefers the lexicographically smallest `(mb, nb, kb, bs, mpn, npn,
/// kpn, edge)` tuple, making selection independent of candidate
/// enumeration order (and therefore stable across refactors of the
/// search loops — a requirement for persistent tuning-database keys).
fn canonical_key(p: &MatmulParams) -> (usize, usize, usize, usize, usize, usize, usize, u8) {
    (
        p.mb,
        p.nb,
        p.kb,
        p.bs,
        p.mpn,
        p.npn,
        p.kpn,
        (p.edge == EdgePolicy::Tail) as u8,
    )
}

/// Deterministic total order on scored candidates: `f64::total_cmp` on
/// cost (no incomparable NaN holes), then the canonical parameter key.
fn scored_cmp(a: &(f64, MatmulParams), b: &(f64, MatmulParams)) -> Ordering {
    a.0.total_cmp(&b.0)
        .then_with(|| canonical_key(&a.1).cmp(&canonical_key(&b.1)))
}

/// Fold one scored candidate into the running best under [`scored_cmp`].
fn fold_best(best: &mut Option<(f64, MatmulParams)>, c: f64, p: MatmulParams) {
    match best {
        Some(b) if scored_cmp(b, &(c, p)) != Ordering::Greater => {}
        _ => *best = Some((c, p)),
    }
}

/// Pick template parameters for `problem` on `machine`.
///
/// The returned parameters always validate against the problem.
/// Selection is a deterministic total order: candidates are compared by
/// [`estimate_cycles`] under `f64::total_cmp`, with cost ties broken on
/// the canonical `(mb, nb, kb, bs, mpn, npn)` parameter tuple — the
/// result never depends on enumeration order.
pub fn choose_params(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    constraints: &Constraints,
) -> MatmulParams {
    let mut best: Option<(f64, MatmulParams)> = None;
    for_each_candidate(machine, problem, constraints, &mut |p| {
        fold_best(&mut best, estimate_cycles(machine, problem, &p), p);
    });
    let p = best
        .expect("at least the all-ones decomposition is valid")
        .1;
    debug_assert!(p.validate(problem).is_ok());
    p
}

/// The ranked top-`k` candidates for `problem`, cheapest first.
///
/// This is the cost-model *pruning* half of measured autotuning: the
/// analytic model shortlists `k` plausible instantiations, and the
/// tuning orchestrator re-scores the shortlist on the cache simulator
/// and wall clock. `choose_params` is exactly the head of this list.
/// The ordering is the same deterministic total order `choose_params`
/// uses, so rank 0 is stable across runs.
pub fn choose_params_ranked(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    constraints: &Constraints,
    k: usize,
) -> Vec<MatmulParams> {
    let mut scored: Vec<(f64, MatmulParams)> = Vec::new();
    for_each_candidate(machine, problem, constraints, &mut |p| {
        scored.push((estimate_cycles(machine, problem, &p), p));
    });
    scored.sort_by(scored_cmp);
    // duplicate instantiations can be enumerated twice (e.g. a fixed
    // tile size re-pushed into the candidate list); rank uniquely
    scored.dedup_by(|a, b| a.1 == b.1);
    scored.truncate(k);
    scored.into_iter().map(|(_, p)| p).collect()
}

/// Enumerate every valid instantiation for `problem` under
/// `constraints`, calling `f` on each. The single source of truth for
/// the candidate space shared by [`choose_params`] (argmin) and
/// [`choose_params_ranked`] (top-k shortlist).
fn for_each_candidate(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    constraints: &Constraints,
    f: &mut impl FnMut(MatmulParams),
) {
    let mut m_tile_candidates = tile_candidates(
        problem.m,
        &[64, 48, 32, 16, 8, 4, 2, 1],
        constraints.allow_ragged_m,
    );
    // nb candidates are lane-aligned for the target machine: whole
    // multiples of the SIMD width first (4/3/2/1 registers of columns),
    // then the generic power-of-two ladder. On a 16-lane AVX-512
    // machine the multiples are 64/48/32/16 — exactly the head of the
    // generic list — while a 4-lane NEON machine also proposes 12,
    // keeping the register tile dense at narrow widths.
    let lanes = machine.f32_lanes().max(1);
    let mut n_prefer: Vec<usize> = [4usize, 3, 2, 1].iter().map(|&r| r * lanes).collect();
    for &b in &[64, 48, 32, 16, 8, 4, 2, 1] {
        if !n_prefer.contains(&b) {
            n_prefer.push(b);
        }
    }
    let n_tile_candidates = tile_candidates(problem.n, &n_prefer, constraints.allow_ragged_n);
    let mut k_tile_candidates = tile_candidates(
        problem.k,
        &[256, 128, 64, 32, 16, 8, 4, 2, 1],
        constraints.allow_ragged_k,
    );
    if let Some(f) = constraints.fixed_kb {
        if problem.k.is_multiple_of(f) && !k_tile_candidates.contains(&f) {
            k_tile_candidates.push(f);
        }
    }
    if let Some(f) = constraints.fixed_mb {
        if problem.m.is_multiple_of(f) && !m_tile_candidates.contains(&f) {
            m_tile_candidates.push(f);
        }
    }

    for &mb in &m_tile_candidates {
        if let Some(f) = constraints.fixed_mb {
            if mb != f {
                continue;
            }
        }
        let m_tiles = problem.m.div_ceil(mb);
        let ragged_m = !problem.m.is_multiple_of(mb);
        for &nb in &n_tile_candidates {
            let n_tiles = problem.n.div_ceil(nb);
            let ragged_n = !problem.n.is_multiple_of(nb);
            for &kb in &k_tile_candidates {
                if let Some(f) = constraints.fixed_kb {
                    if kb != f {
                        continue;
                    }
                }
                let k_tiles = problem.k.div_ceil(kb);
                let ragged_k = !problem.k.is_multiple_of(kb);
                for bs in divisors(k_tiles) {
                    if bs > 8 {
                        continue;
                    }
                    for mpn in divisors(m_tiles) {
                        for npn in divisors(n_tiles) {
                            if constraints.full_n_per_task && npn != 1 {
                                continue;
                            }
                            let tasks = problem.batch * mpn * npn;
                            if let Some(ft) = constraints.fixed_tasks {
                                if problem.batch * mpn * npn != ft {
                                    continue;
                                }
                            } else if tasks > 4 * machine.cores && tasks > problem.batch {
                                continue;
                            }
                            let k_chunks = k_tiles / bs;
                            for kpn in divisors(k_chunks) {
                                if kpn > 1 {
                                    // k-slicing only pays when the plain
                                    // decomposition underfills the pool,
                                    // and only up to a modest fan-out.
                                    // The sliced template also has no
                                    // edge-tile support.
                                    if !constraints.allow_k_slice
                                        || ragged_m
                                        || ragged_n
                                        || ragged_k
                                        || tasks >= machine.cores
                                        || tasks * kpn > 4 * machine.cores
                                        || kpn > 16
                                    {
                                        continue;
                                    }
                                }
                                // A ragged m is a real policy choice:
                                // price pad-and-go against tail kernels
                                // and keep the cheaper. K/N raggedness
                                // is always pad-and-go (pack-time cost
                                // only), so no policy fork there.
                                let edges: &[EdgePolicy] = if ragged_m {
                                    &[EdgePolicy::Pad, EdgePolicy::Tail]
                                } else {
                                    &[EdgePolicy::Pad]
                                };
                                for &edge in edges {
                                    f(MatmulParams {
                                        mpn,
                                        npn,
                                        mb,
                                        nb,
                                        kb,
                                        bs,
                                        kpn,
                                        edge,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Block-size candidates for one dimension.
///
/// Without `ragged`, only divisors of `dim` from the preferred list
/// qualify (plus 1 as a fallback and `dim` itself for prime dims like
/// k=479 — the degenerate blocking this PR's ragged mode exists to
/// avoid). With `ragged`, every preferred size no larger than `dim`
/// qualifies: the near-target non-divisors (e.g. `kb = 64` for k=479)
/// cost a little pack-time padding but keep the microkernel on its
/// tuned tile shape.
fn tile_candidates(dim: usize, prefer: &[usize], ragged: bool) -> Vec<usize> {
    let mut out: Vec<usize> = prefer
        .iter()
        .copied()
        .filter(|&b| b <= dim && (ragged || dim.is_multiple_of(b)))
        .collect();
    if out.is_empty() {
        out.push(crate::largest_divisor_at_most(
            dim,
            *prefer.first().unwrap_or(&64),
        ));
    }
    if !out.contains(&dim) && dim <= 1024 {
        out.push(dim);
    }
    out.dedup();
    out
}

/// Cost model for one instantiation: compute / balance + memory traffic
/// + per-kernel overheads.
///
/// Ragged dimensions are priced physically: pad-and-go sweeps (and
/// streams) the padded extents, wasting `pad/dim` of the work on dead
/// rows/columns; the tail policy sweeps only the logical m rows but
/// pays [`cost::tail_call_cycles`] on every brgemm call and runs the
/// edge row of tiles on a narrower, less efficient register tile.
pub fn estimate_cycles(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    p: &MatmulParams,
) -> f64 {
    // k-slicing widens the accumulation phase to `tasks * kpn` workers,
    // each sweeping a 1/kpn-deep slab of the reduction.
    let tasks = problem.batch * p.tasks() * p.kpn;
    let m_pad = p.m_tiles(problem.m) * p.mb;
    let n_pad = p.n_tiles(problem.n) * p.nb;
    let k_pad = p.ksn(problem.k) * p.kb;
    let use_tail = p.edge == EdgePolicy::Tail && p.ragged_m(problem.m);
    // Rows of C the microkernels actually sweep, and the blended
    // efficiency: under the tail policy the edge tile row runs a
    // partial-height register tile, so its rows move slower — weight
    // the efficiencies by row counts (time adds harmonically).
    let (rows, eff) = {
        let eff_full =
            cost::microkernel_efficiency(machine, p.mb, p.nb, p.kb, p.bs, problem.elem_bytes);
        if use_tail {
            let rem = problem.m % p.mb;
            let eff_edge =
                cost::microkernel_efficiency(machine, rem, p.nb, p.kb, p.bs, problem.elem_bytes);
            let full_rows = (problem.m - rem) as f64;
            let blended = problem.m as f64 / (full_rows / eff_full + rem as f64 / eff_edge);
            (problem.m, blended)
        } else {
            (m_pad, eff_full)
        }
    };
    // Tasks beyond the core count just queue: the wall-clock is the
    // per-task cost times the number of waves.
    let waves = tasks.div_ceil(machine.cores) as f64;
    let flops = 2.0 * (problem.batch * rows * n_pad * k_pad) as f64;
    let flops_per_task = flops / tasks as f64;
    let compute = waves * cost::compute_cycles(machine, flops_per_task, problem.elem_bytes, eff);
    // memory traffic per task. The single-core kernel walks: for each of
    // its MSN m-tiles, the whole task B slice (re-read each sweep, from
    // whichever cache level holds it) and the m-tile's A panels. Packed
    // buffers hold the padded extents, so traffic is padded too.
    let msn = p.msn(problem.m).max(1);
    let nsn = p.nsn(problem.n).max(1);
    let k_slice = k_pad / p.kpn;
    let a_bytes = (msn * p.mb * k_slice * problem.elem_bytes) as f64;
    let b_slice = (nsn * p.nb * k_slice * problem.elem_bytes) as f64;
    let c_bytes = (msn * p.mb * nsn * p.nb * 4) as f64;
    // bandwidth tier by residency: a slice that stays in L2 / the LLC
    // slice moves at cache bandwidth, not DRAM bandwidth
    let tier = |bytes: f64| -> f64 {
        if bytes as usize <= machine.l2_bytes() {
            cost::l2_stream_cycles(machine, bytes)
        } else if bytes as usize <= machine.llc_bytes() / machine.cores.max(1) {
            cost::llc_stream_cycles(machine, bytes)
        } else {
            cost::stream_cycles(machine, bytes)
        }
    };
    // Splitting the reduction into several k-chunks accumulates into C
    // with beta=1: every chunk past the first re-reads and re-writes
    // the task's C tile. With the whole accumulator state in flight the
    // traffic rarely stays L1-resident, so this is what makes a deep
    // single chunk (even one slightly over L1) beat many shallow ones.
    let chunks = p.k_chunks_slice(problem.k).max(1) as f64;
    let mem = waves
        * (tier(a_bytes)
            + msn as f64 * tier(b_slice)
            + tier(c_bytes)
            + (chunks - 1.0) * 2.0 * tier(c_bytes));
    // per-microkernel-call fixed overhead; clamped (tail) calls pay the
    // extra clamp/dispatch cost on every call — the template has no
    // branches, so interior tiles also route through the tail entry.
    let calls = waves * (msn * nsn * p.k_chunks_slice(problem.k).max(1)) as f64;
    let per_call = if use_tail {
        40.0 + cost::tail_call_cycles(machine)
    } else {
        40.0
    };
    let mut cycles = compute.max(mem) + calls * per_call + cost::barrier_cycles(machine);
    if p.kpn > 1 {
        // second parallel phase: each (m, n) task folds its kpn partial
        // accumulators and runs the epilogue — dominated by re-reading
        // the kpn partial slabs, plus one more barrier.
        let red_tasks = problem.batch * p.tasks();
        let red_waves = red_tasks.div_ceil(machine.cores) as f64;
        let red_bytes = (p.kpn * msn * p.mb * nsn * p.nb * 4) as f64;
        cycles += red_waves * tier(red_bytes) + cost::barrier_cycles(machine);
    }
    cycles
}

/// Parameter selection emulating a primitives *library*: a fixed menu
/// of mature kernels (`MB`/`NB`/`KB` from a small set) rather than the
/// compiler's free search. Used by the baseline.
pub fn choose_params_library(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    constraints: &Constraints,
) -> MatmulParams {
    fn menu(dim: usize, menu: &[usize], fallback_cap: usize) -> Vec<usize> {
        let mut out: Vec<usize> = menu
            .iter()
            .copied()
            .filter(|&b| b <= dim && dim.is_multiple_of(b))
            .collect();
        if out.is_empty() {
            out.push(crate::largest_divisor_at_most(dim, fallback_cap));
        }
        out
    }
    let mbs = menu(problem.m, &[32, 16], 32);
    let nbs = menu(problem.n, &[64, 32, 16], 64);
    // the library's mature kernels handle long reduction tails, so the
    // fallback accepts whatever divisor keeps one kernel per panel
    let kbs = menu(problem.k, &[64, 32], 512);
    let mut best: Option<(f64, MatmulParams)> = None;
    for &mb in &mbs {
        for &nb in &nbs {
            for &kb in &kbs {
                let k_tiles = problem.k / kb;
                for bs in divisors(k_tiles) {
                    if bs > 4 {
                        continue;
                    }
                    for mpn in divisors(problem.m / mb) {
                        for npn in divisors(problem.n / nb) {
                            if constraints.full_n_per_task && npn != 1 {
                                continue;
                            }
                            let tasks = problem.batch * mpn * npn;
                            if tasks > 4 * machine.cores && tasks > problem.batch {
                                continue;
                            }
                            // the library menu has no k-sliced kernels
                            // and no edge-tile kernels (divisor-only
                            // blocking, like a fixed primitive set)
                            let p = MatmulParams {
                                mpn,
                                npn,
                                mb,
                                nb,
                                kb,
                                bs,
                                kpn: 1,
                                edge: EdgePolicy::Pad,
                            };
                            fold_best(&mut best, estimate_cycles(machine, problem, &p), p);
                        }
                    }
                }
            }
        }
    }
    best.expect("library menu always yields a valid decomposition")
        .1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> MachineDescriptor {
        MachineDescriptor::xeon_8358()
    }

    #[test]
    fn params_validate_for_mlp_shapes() {
        let machine = xeon();
        for &(m, n, k) in &[
            (512usize, 512usize, 13usize),
            (512, 256, 512),
            (128, 128, 256),
            (32, 512, 13),
            (256, 1024, 479),
            (512, 1, 256),
        ] {
            for eb in [4usize, 1] {
                let prob = MatmulProblem::new(m, n, k, eb);
                let p = choose_params(&machine, &prob, &Constraints::default());
                p.validate(&prob).unwrap_or_else(|e| {
                    panic!("invalid params for {m}x{n}x{k} eb{eb}: {e} ({p:?})")
                });
            }
        }
    }

    #[test]
    fn machine_presets_diverge_on_mlp1() {
        // The point of threading the ISA through MachineDescriptor: the
        // same MLP_1 layers must lower to genuinely different template
        // parameters on the 16-lane Xeon vs the 4-lane NEON preset —
        // not just a scaled cost. Pin that at least one layer's chosen
        // tile differs, and that the NEON choice is 4-lane-aligned.
        let xeon = MachineDescriptor::xeon_8358();
        let arm = MachineDescriptor::aarch64_small();
        let mut diverged = 0;
        // MLP_1 (Table 1): 13 -> 512 -> 256 -> 128, batch 256.
        for &(m, n, k) in &[
            (256usize, 512usize, 13usize),
            (256, 256, 512),
            (256, 128, 256),
        ] {
            let prob = MatmulProblem::new(m, n, k, 4);
            let cons = Constraints::default();
            let px = choose_params(&xeon, &prob, &cons);
            let pa = choose_params(&arm, &prob, &cons);
            px.validate(&prob).unwrap();
            pa.validate(&prob).unwrap();
            assert!(pa.nb.is_multiple_of(4), "NEON nb off the lane grid: {pa:?}");
            if (px.mb, px.nb, px.kb, px.bs) != (pa.mb, pa.nb, pa.kb, pa.bs) {
                diverged += 1;
            }
        }
        assert!(
            diverged > 0,
            "xeon and aarch64 presets chose identical microkernel tiles on every MLP_1 layer"
        );
    }

    #[test]
    fn uses_many_cores_when_possible() {
        let machine = xeon();
        let prob = MatmulProblem::new(512, 512, 512, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        assert!(p.tasks() >= machine.cores / 2, "{p:?}");
    }

    #[test]
    fn small_batch_uses_n_parallelism() {
        let machine = xeon();
        // M = 32: not enough rows for 32 cores with big MB
        let prob = MatmulProblem::new(32, 512, 512, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        assert!(p.tasks() >= 8, "{p:?}");
    }

    #[test]
    fn full_n_constraint_respected() {
        let machine = xeon();
        let prob = MatmulProblem::new(32, 512, 512, 4);
        let c = Constraints {
            full_n_per_task: true,
            ..Constraints::default()
        };
        let p = choose_params(&machine, &prob, &c);
        assert_eq!(p.npn, 1);
    }

    #[test]
    fn fixed_mb_and_tasks_respected() {
        let machine = xeon();
        let prob = MatmulProblem::new(128, 512, 512, 4);
        let c = Constraints {
            full_n_per_task: true,
            fixed_mb: Some(4),
            fixed_tasks: Some(32),
            ..Constraints::default()
        };
        let p = choose_params(&machine, &prob, &c);
        assert_eq!(p.mb, 4);
        assert_eq!(p.npn, 1);
        assert_eq!(p.mpn * prob.batch, 32);
    }

    #[test]
    fn batched_problem_counts_batch_parallelism() {
        let machine = xeon();
        // 256 batch matrices: batch alone saturates the cores
        let prob = MatmulProblem::batched(256, 128, 128, 64, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        p.validate(&prob).unwrap();
        assert!(prob.batch * p.tasks() >= machine.cores);
    }

    #[test]
    fn prime_k_degenerate_without_ragged_near_target_with() {
        let machine = xeon();
        let ragged_c = Constraints {
            allow_ragged_m: true,
            allow_ragged_n: true,
            allow_ragged_k: true,
            ..Constraints::default()
        };
        // f32: a prime k = 479 forces kb = 1 (no reduction depth) or
        // kb = 479 (a 61 KB working set that blows L1) on the
        // divisor-only search.
        let prob = MatmulProblem::new(256, 1024, 479, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        assert!(p.kb == 1 || p.kb == 479, "{p:?}");
        p.validate(&prob).unwrap();
        // With ragged k allowed, the search takes a near-target block
        // with a zero-padded remainder tile instead of the degenerate
        // extremes: e.g. 479 = 7*64 + 31 wastes 6.9% of the k sweep
        // but keeps the microkernel's working set cache-resident.
        let ragged = choose_params(&machine, &prob, &ragged_c);
        ragged.validate(&prob).unwrap();
        assert!(
            ragged.kb != 1 && ragged.kb != 479,
            "ragged search must escape degenerate prime blocking, got {ragged:?}"
        );
        assert!(
            (16..=256).contains(&ragged.kb),
            "near-target kb expected, got {ragged:?}"
        );
        assert!(
            estimate_cycles(&machine, &prob, &ragged) < estimate_cycles(&machine, &prob, &p),
            "padded blocking must beat degenerate blocking in the model"
        );
        // int8 halves the working set, so kb = 479 fits L1 and stays
        // legitimately competitive — the ragged search considers a
        // superset of candidates, so it can never do worse.
        let prob_i8 = MatmulProblem::new(256, 1024, 479, 1);
        let p_i8 = choose_params(&machine, &prob_i8, &Constraints::default());
        let ragged_i8 = choose_params(&machine, &prob_i8, &ragged_c);
        ragged_i8.validate(&prob_i8).unwrap();
        assert!(
            estimate_cycles(&machine, &prob_i8, &ragged_i8)
                <= estimate_cycles(&machine, &prob_i8, &p_i8)
        );
    }

    /// The pad-vs-tail decision must flip with the edge-tile size: a
    /// nearly-full edge tile (m = 255, rem 31 of mb = 32 — 0.4% padded
    /// rows) is cheapest padded, while a nearly-empty one (m = 257,
    /// rem 1 — 10.8% padded rows) is cheapest with tail kernels. These
    /// pins hold the selection boundary in place: if the cost model's
    /// tail overhead or padded-FLOP pricing drifts, one of them trips.
    #[test]
    fn pad_vs_tail_flips_on_edge_tile_fill() {
        let machine = xeon();
        let c = Constraints {
            allow_ragged_m: true,
            fixed_mb: Some(32),
            ..Constraints::default()
        };
        let nearly_full = MatmulProblem::new(255, 512, 512, 4);
        let p_full = choose_params(&machine, &nearly_full, &c);
        p_full.validate(&nearly_full).unwrap();
        assert!(p_full.ragged_m(nearly_full.m));
        assert_eq!(
            p_full.edge,
            EdgePolicy::Pad,
            "rem 31/32 edge should pad, got {p_full:?}"
        );
        let nearly_empty = MatmulProblem::new(257, 512, 512, 4);
        let p_empty = choose_params(&machine, &nearly_empty, &c);
        p_empty.validate(&nearly_empty).unwrap();
        assert!(p_empty.ragged_m(nearly_empty.m));
        assert_eq!(
            p_empty.edge,
            EdgePolicy::Tail,
            "rem 1/32 edge should use tail kernels, got {p_empty:?}"
        );
    }

    #[test]
    fn ragged_flags_off_keeps_divisor_blocking() {
        let machine = xeon();
        let prob = MatmulProblem::new(500, 512, 512, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        assert!(
            prob.m.is_multiple_of(p.mb),
            "without allow_ragged_m the blocking must stay exact, got {p:?}"
        );
    }

    #[test]
    fn int8_and_f32_both_work() {
        let machine = xeon();
        let prob_f = MatmulProblem::new(512, 512, 256, 4);
        let prob_i = MatmulProblem::new(512, 512, 256, 1);
        let pf = choose_params(&machine, &prob_f, &Constraints::default());
        let pi = choose_params(&machine, &prob_i, &Constraints::default());
        pf.validate(&prob_f).unwrap();
        pi.validate(&prob_i).unwrap();
    }

    /// Small-batch MLP_1 layers under coarse-fusion constraints: a
    /// shared row-only decomposition of 16 rows yields at most 4-16
    /// M x N tasks on a 32-core machine — the underfilled pool of the
    /// paper's Figure 8 — so with `allow_k_slice` the search must split
    /// the reduction (`kpn > 1`) to widen the accumulation phase, and
    /// without it must stay at `kpn = 1`.
    #[test]
    fn mlp1_full_n_constraints_select_k_slicing() {
        let machine = xeon();
        // the shallow int8 layer (16x128x256, eb = 1) stays unsliced:
        // VNNI quarters the compute share, so splitting k = 256 no
        // longer covers the extra barrier — that boundary is the point
        // of the cost model, not a gap in it
        for &(m, n, k, eb) in &[
            (16usize, 256usize, 512usize, 4usize),
            (16, 256, 512, 1),
            (16, 128, 256, 4),
        ] {
            {
                let prob = MatmulProblem::new(m, n, k, eb);
                let sliced = choose_params(
                    &machine,
                    &prob,
                    &Constraints {
                        full_n_per_task: true,
                        allow_k_slice: true,
                        ..Constraints::default()
                    },
                );
                sliced.validate(&prob).unwrap();
                assert!(
                    sliced.kpn > 1,
                    "{m}x{n}x{k} eb{eb} full-N must k-slice, got {sliced:?}"
                );
                assert!(
                    prob.batch * sliced.tasks() < machine.cores,
                    "k-slicing is only chosen when M x N tasks underfill the pool"
                );
                let plain = choose_params(
                    &machine,
                    &prob,
                    &Constraints {
                        full_n_per_task: true,
                        ..Constraints::default()
                    },
                );
                assert_eq!(plain.kpn, 1);
            }
        }
    }

    /// Free (unconstrained) search on the default 32-core machine fills
    /// the pool by shattering N for MLP_1-sized shapes, so it must not
    /// pay the k-slicing barrier there; on a 128-core pool a deep-K
    /// narrow-M x N problem cannot be filled any other way and must
    /// slice.
    #[test]
    fn free_search_slices_only_on_underfilled_pools() {
        let machine = xeon();
        let prob = MatmulProblem::new(16, 256, 512, 4);
        let p = choose_params(
            &machine,
            &prob,
            &Constraints {
                allow_k_slice: true,
                ..Constraints::default()
            },
        );
        assert_eq!(p.kpn, 1, "N-shattering fills 32 cores: {p:?}");

        let mut wide = xeon();
        wide.cores = 128;
        let deep = MatmulProblem::new(16, 64, 8192, 4);
        let p = choose_params(
            &wide,
            &deep,
            &Constraints {
                allow_k_slice: true,
                ..Constraints::default()
            },
        );
        p.validate(&deep).unwrap();
        assert!(p.kpn > 1, "16x64x8192 @128 cores must k-slice, got {p:?}");
    }

    /// Satellite regression: selection must be a pure function of the
    /// candidate *set*, not the enumeration order. Fold the same scored
    /// candidate list in several permutations and require the identical
    /// winner each time (the old `c < best` argmin kept the first-seen
    /// candidate on cost ties, so a reordered search could silently
    /// change the chosen params — poison for a persistent tuning DB).
    #[test]
    fn selection_is_permutation_invariant() {
        let machine = xeon();
        for &(m, n, k, eb) in &[
            (512usize, 256usize, 512usize, 4usize),
            (16, 256, 512, 4),
            (255, 512, 512, 4),
            (256, 1024, 479, 1),
        ] {
            let problem = MatmulProblem::new(m, n, k, eb);
            let constraints = Constraints {
                allow_k_slice: true,
                allow_ragged_m: true,
                allow_ragged_n: true,
                allow_ragged_k: true,
                ..Constraints::default()
            };
            let mut cands: Vec<MatmulParams> = Vec::new();
            for_each_candidate(&machine, &problem, &constraints, &mut |p| cands.push(p));
            let pick = |order: &[MatmulParams]| -> MatmulParams {
                let mut best = None;
                for p in order {
                    fold_best(&mut best, estimate_cycles(&machine, &problem, p), *p);
                }
                best.unwrap().1
            };
            let reference = pick(&cands);
            assert_eq!(
                reference,
                choose_params(&machine, &problem, &constraints),
                "fold must agree with choose_params"
            );
            let mut reversed = cands.clone();
            reversed.reverse();
            assert_eq!(reference, pick(&reversed), "reversed order changed pick");
            let mut rotated = cands.clone();
            rotated.rotate_left(cands.len() / 3);
            assert_eq!(reference, pick(&rotated), "rotated order changed pick");
            let mut interleaved: Vec<MatmulParams> = Vec::with_capacity(cands.len());
            let half = cands.len() / 2;
            for i in 0..half {
                interleaved.push(cands[half + i]);
                interleaved.push(cands[i]);
            }
            interleaved.extend_from_slice(&cands[2 * half..]);
            assert_eq!(
                reference,
                pick(&interleaved),
                "interleaved order changed pick"
            );
        }
    }

    /// Exact cost ties resolve to the canonical smallest parameter
    /// tuple regardless of which candidate is folded first.
    #[test]
    fn ties_break_on_canonical_key() {
        let a = MatmulParams {
            mpn: 2,
            npn: 1,
            mb: 16,
            nb: 32,
            kb: 64,
            bs: 1,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        let b = MatmulParams { mb: 32, ..a };
        // identical cost, either insertion order: the mb=16 candidate
        // has the smaller canonical key and must win both times
        let mut first = None;
        fold_best(&mut first, 100.0, a);
        fold_best(&mut first, 100.0, b);
        let mut second = None;
        fold_best(&mut second, 100.0, b);
        fold_best(&mut second, 100.0, a);
        assert_eq!(first.unwrap().1, a);
        assert_eq!(second.unwrap().1, a);
    }

    /// The ranked list is deterministic, deduplicated, cheapest-first,
    /// and headed by exactly the `choose_params` winner.
    #[test]
    fn ranked_head_matches_choose_params() {
        let machine = xeon();
        for &(m, n, k) in &[(512usize, 256usize, 512usize), (16, 256, 512)] {
            let problem = MatmulProblem::new(m, n, k, 4);
            let constraints = Constraints {
                allow_k_slice: true,
                ..Constraints::default()
            };
            let top = choose_params_ranked(&machine, &problem, &constraints, 8);
            assert!(!top.is_empty() && top.len() <= 8);
            assert_eq!(top[0], choose_params(&machine, &problem, &constraints));
            assert_eq!(
                top,
                choose_params_ranked(&machine, &problem, &constraints, 8)
            );
            for w in top.windows(2) {
                assert_ne!(w[0], w[1], "ranked list must not repeat candidates");
                let c0 = estimate_cycles(&machine, &problem, &w[0]);
                let c1 = estimate_cycles(&machine, &problem, &w[1]);
                assert!(c0 <= c1, "ranked list must be cheapest-first");
            }
            for p in &top {
                p.validate(&problem).unwrap();
            }
        }
    }

    #[test]
    fn overrides_round_trip() {
        let problem = MatmulProblem::new(64, 64, 64, 4);
        let constraints = Constraints::default();
        let params = MatmulParams {
            mpn: 2,
            npn: 2,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 1,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        let mut ov = ParamOverrides::new();
        assert!(ov.is_empty());
        ov.insert(problem, constraints, params);
        assert_eq!(ov.len(), 1);
        assert_eq!(ov.get(&problem, &constraints), Some(params));
        // a different constraint set is a different choice point
        let other = Constraints {
            full_n_per_task: true,
            ..constraints
        };
        assert_eq!(ov.get(&problem, &other), None);
    }

    #[test]
    fn cost_orders_sane_vs_pathological() {
        let machine = xeon();
        let prob = MatmulProblem::new(512, 512, 512, 4);
        let good = MatmulParams {
            mpn: 8,
            npn: 4,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        let bad = MatmulParams {
            mpn: 1,
            npn: 1,
            mb: 1,
            nb: 1,
            kb: 1,
            bs: 1,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        assert!(estimate_cycles(&machine, &prob, &good) < estimate_cycles(&machine, &prob, &bad));
    }
}
