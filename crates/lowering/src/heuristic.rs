//! The expert-tuned parameter heuristic.
//!
//! "For a given output matrix size, it first proposes single-core kernel
//! size options, a set of [MPN, NPN], which can use all cores with good
//! load balance. It further proposes microkernel size options, a set of
//! [MB, NB, KB, BS], which ensure good microkernel performance. Then the
//! heuristic picks a pair of these sizes [...] based on a cost model
//! which considers multi-core load balancing and single-core kernel
//! efficiency."

use crate::params::{divisors, MatmulParams, MatmulProblem};
use gc_machine::{cost, MachineDescriptor};

/// Constraints the surrounding graph imposes on the decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Constraints {
    /// Force `NPN = 1` (reduction post-ops along n, or membership in a
    /// coarse-fusion group whose members must share a row-only task
    /// decomposition).
    pub full_n_per_task: bool,
    /// Force a specific `MB` so chained fused ops share blocking.
    pub fixed_mb: Option<usize>,
    /// Force a specific `KB` (layout propagation: a chained matmul reads
    /// its producer's blocked output, so `KB` must equal the producer's
    /// `NB`).
    pub fixed_kb: Option<usize>,
    /// Force a specific task count (coarse-fusion groups share one
    /// parallel loop, so every member must decompose into the same
    /// number of tasks).
    pub fixed_tasks: Option<usize>,
    /// Permit `KPN > 1` (k-slicing): when `batch * MPN * NPN` underfills
    /// the thread pool, split the reduction across extra workers with
    /// per-slice partial accumulators and a second reduction phase.
    pub allow_k_slice: bool,
}

/// Pick template parameters for `problem` on `machine`.
///
/// The returned parameters always validate against the problem.
pub fn choose_params(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    constraints: &Constraints,
) -> MatmulParams {
    let mut m_tile_candidates = tile_candidates(problem.m, &[64, 48, 32, 16, 8, 4, 2, 1]);
    let n_tile_candidates = tile_candidates(problem.n, &[64, 48, 32, 16, 8, 4, 2, 1]);
    let mut k_tile_candidates = tile_candidates(problem.k, &[256, 128, 64, 32, 16, 8, 4, 2, 1]);
    if let Some(f) = constraints.fixed_kb {
        if problem.k.is_multiple_of(f) && !k_tile_candidates.contains(&f) {
            k_tile_candidates.push(f);
        }
    }
    if let Some(f) = constraints.fixed_mb {
        if problem.m.is_multiple_of(f) && !m_tile_candidates.contains(&f) {
            m_tile_candidates.push(f);
        }
    }

    let mut best: Option<(f64, MatmulParams)> = None;
    for &mb in &m_tile_candidates {
        if let Some(f) = constraints.fixed_mb {
            if mb != f {
                continue;
            }
        }
        let m_tiles = problem.m / mb;
        for &nb in &n_tile_candidates {
            let n_tiles = problem.n / nb;
            for &kb in &k_tile_candidates {
                if let Some(f) = constraints.fixed_kb {
                    if kb != f {
                        continue;
                    }
                }
                let k_tiles = problem.k / kb;
                for bs in divisors(k_tiles) {
                    if bs > 8 {
                        continue;
                    }
                    for mpn in divisors(m_tiles) {
                        for npn in divisors(n_tiles) {
                            if constraints.full_n_per_task && npn != 1 {
                                continue;
                            }
                            let tasks = problem.batch * mpn * npn;
                            if let Some(ft) = constraints.fixed_tasks {
                                if problem.batch * mpn * npn != ft {
                                    continue;
                                }
                            } else if tasks > 4 * machine.cores && tasks > problem.batch {
                                continue;
                            }
                            let k_chunks = k_tiles / bs;
                            for kpn in divisors(k_chunks) {
                                if kpn > 1 {
                                    // k-slicing only pays when the plain
                                    // decomposition underfills the pool,
                                    // and only up to a modest fan-out.
                                    if !constraints.allow_k_slice
                                        || tasks >= machine.cores
                                        || tasks * kpn > 4 * machine.cores
                                        || kpn > 16
                                    {
                                        continue;
                                    }
                                }
                                let p = MatmulParams {
                                    mpn,
                                    npn,
                                    mb,
                                    nb,
                                    kb,
                                    bs,
                                    kpn,
                                };
                                let c = estimate_cycles(machine, problem, &p);
                                if best.as_ref().map(|(b, _)| c < *b).unwrap_or(true) {
                                    best = Some((c, p));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let p = best
        .expect("at least the all-ones decomposition is valid")
        .1;
    debug_assert!(p.validate(problem).is_ok());
    p
}

/// Divisors of `dim` restricted to a preferred candidate list (plus 1 as
/// a fallback and `dim` itself for prime dims like k=479).
fn tile_candidates(dim: usize, prefer: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = prefer
        .iter()
        .copied()
        .filter(|&b| b <= dim && dim.is_multiple_of(b))
        .collect();
    if out.is_empty() {
        out.push(crate::largest_divisor_at_most(
            dim,
            *prefer.first().unwrap_or(&64),
        ));
    }
    if !out.contains(&dim) && dim <= 1024 {
        out.push(dim);
    }
    out.dedup();
    out
}

/// Cost model for one instantiation: compute / balance + memory traffic
/// + per-kernel overheads.
pub fn estimate_cycles(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    p: &MatmulParams,
) -> f64 {
    // k-slicing widens the accumulation phase to `tasks * kpn` workers,
    // each sweeping a 1/kpn-deep slab of the reduction.
    let tasks = problem.batch * p.tasks() * p.kpn;
    let eff = cost::microkernel_efficiency(machine, p.mb, p.nb, p.kb, p.bs, problem.elem_bytes);
    // Tasks beyond the core count just queue: the wall-clock is the
    // per-task cost times the number of waves.
    let waves = tasks.div_ceil(machine.cores) as f64;
    let flops_per_task = problem.flops() / tasks as f64;
    let compute = waves * cost::compute_cycles(machine, flops_per_task, problem.elem_bytes, eff);
    // memory traffic per task. The single-core kernel walks: for each of
    // its MSN m-tiles, the whole task B slice (re-read each sweep, from
    // whichever cache level holds it) and the m-tile's A panels.
    let msn = p.msn(problem.m).max(1);
    let nsn = p.nsn(problem.n).max(1);
    let k_slice = problem.k / p.kpn;
    let a_bytes = (msn * p.mb * k_slice * problem.elem_bytes) as f64;
    let b_slice = (nsn * p.nb * k_slice * problem.elem_bytes) as f64;
    let c_bytes = (msn * p.mb * nsn * p.nb * 4) as f64;
    // bandwidth tier by residency: a slice that stays in L2 / the LLC
    // slice moves at cache bandwidth, not DRAM bandwidth
    let tier = |bytes: f64| -> f64 {
        if bytes as usize <= machine.l2_bytes() {
            bytes / (8.0 * machine.mem_bw_bytes_per_cycle)
        } else if bytes as usize <= machine.llc_bytes() / machine.cores.max(1) {
            bytes / (4.0 * machine.mem_bw_bytes_per_cycle)
        } else {
            cost::stream_cycles(machine, bytes)
        }
    };
    let mem = waves * (tier(a_bytes) + msn as f64 * tier(b_slice) + tier(c_bytes));
    // per-microkernel-call fixed overhead
    let calls = waves * (msn * nsn * p.k_chunks_slice(problem.k).max(1)) as f64;
    let mut cycles = compute.max(mem) + calls * 40.0 + cost::barrier_cycles(machine);
    if p.kpn > 1 {
        // second parallel phase: each (m, n) task folds its kpn partial
        // accumulators and runs the epilogue — dominated by re-reading
        // the kpn partial slabs, plus one more barrier.
        let red_tasks = problem.batch * p.tasks();
        let red_waves = red_tasks.div_ceil(machine.cores) as f64;
        let red_bytes = (p.kpn * msn * p.mb * nsn * p.nb * 4) as f64;
        cycles += red_waves * tier(red_bytes) + cost::barrier_cycles(machine);
    }
    cycles
}

/// Parameter selection emulating a primitives *library*: a fixed menu
/// of mature kernels (`MB`/`NB`/`KB` from a small set) rather than the
/// compiler's free search. Used by the baseline.
pub fn choose_params_library(
    machine: &MachineDescriptor,
    problem: &MatmulProblem,
    constraints: &Constraints,
) -> MatmulParams {
    fn menu(dim: usize, menu: &[usize], fallback_cap: usize) -> Vec<usize> {
        let mut out: Vec<usize> = menu
            .iter()
            .copied()
            .filter(|&b| b <= dim && dim.is_multiple_of(b))
            .collect();
        if out.is_empty() {
            out.push(crate::largest_divisor_at_most(dim, fallback_cap));
        }
        out
    }
    let mbs = menu(problem.m, &[32, 16], 32);
    let nbs = menu(problem.n, &[64, 32, 16], 64);
    // the library's mature kernels handle long reduction tails, so the
    // fallback accepts whatever divisor keeps one kernel per panel
    let kbs = menu(problem.k, &[64, 32], 512);
    let mut best: Option<(f64, MatmulParams)> = None;
    for &mb in &mbs {
        for &nb in &nbs {
            for &kb in &kbs {
                let k_tiles = problem.k / kb;
                for bs in divisors(k_tiles) {
                    if bs > 4 {
                        continue;
                    }
                    for mpn in divisors(problem.m / mb) {
                        for npn in divisors(problem.n / nb) {
                            if constraints.full_n_per_task && npn != 1 {
                                continue;
                            }
                            let tasks = problem.batch * mpn * npn;
                            if tasks > 4 * machine.cores && tasks > problem.batch {
                                continue;
                            }
                            // the library menu has no k-sliced kernels
                            let p = MatmulParams {
                                mpn,
                                npn,
                                mb,
                                nb,
                                kb,
                                bs,
                                kpn: 1,
                            };
                            let c = estimate_cycles(machine, problem, &p);
                            if best.as_ref().map(|(b, _)| c < *b).unwrap_or(true) {
                                best = Some((c, p));
                            }
                        }
                    }
                }
            }
        }
    }
    best.expect("library menu always yields a valid decomposition")
        .1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> MachineDescriptor {
        MachineDescriptor::xeon_8358()
    }

    #[test]
    fn params_validate_for_mlp_shapes() {
        let machine = xeon();
        for &(m, n, k) in &[
            (512usize, 512usize, 13usize),
            (512, 256, 512),
            (128, 128, 256),
            (32, 512, 13),
            (256, 1024, 479),
            (512, 1, 256),
        ] {
            for eb in [4usize, 1] {
                let prob = MatmulProblem::new(m, n, k, eb);
                let p = choose_params(&machine, &prob, &Constraints::default());
                p.validate(&prob).unwrap_or_else(|e| {
                    panic!("invalid params for {m}x{n}x{k} eb{eb}: {e} ({p:?})")
                });
            }
        }
    }

    #[test]
    fn uses_many_cores_when_possible() {
        let machine = xeon();
        let prob = MatmulProblem::new(512, 512, 512, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        assert!(p.tasks() >= machine.cores / 2, "{p:?}");
    }

    #[test]
    fn small_batch_uses_n_parallelism() {
        let machine = xeon();
        // M = 32: not enough rows for 32 cores with big MB
        let prob = MatmulProblem::new(32, 512, 512, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        assert!(p.tasks() >= 8, "{p:?}");
    }

    #[test]
    fn full_n_constraint_respected() {
        let machine = xeon();
        let prob = MatmulProblem::new(32, 512, 512, 4);
        let c = Constraints {
            full_n_per_task: true,
            ..Constraints::default()
        };
        let p = choose_params(&machine, &prob, &c);
        assert_eq!(p.npn, 1);
    }

    #[test]
    fn fixed_mb_and_tasks_respected() {
        let machine = xeon();
        let prob = MatmulProblem::new(128, 512, 512, 4);
        let c = Constraints {
            full_n_per_task: true,
            fixed_mb: Some(4),
            fixed_tasks: Some(32),
            ..Constraints::default()
        };
        let p = choose_params(&machine, &prob, &c);
        assert_eq!(p.mb, 4);
        assert_eq!(p.npn, 1);
        assert_eq!(p.mpn * prob.batch, 32);
    }

    #[test]
    fn batched_problem_counts_batch_parallelism() {
        let machine = xeon();
        // 256 batch matrices: batch alone saturates the cores
        let prob = MatmulProblem::batched(256, 128, 128, 64, 4);
        let p = choose_params(&machine, &prob, &Constraints::default());
        p.validate(&prob).unwrap();
        assert!(prob.batch * p.tasks() >= machine.cores);
    }

    #[test]
    fn prime_k_gets_degenerate_blocking() {
        let machine = xeon();
        let prob = MatmulProblem::new(256, 1024, 479, 1);
        let p = choose_params(&machine, &prob, &Constraints::default());
        // 479 is prime: kb must be 1 or 479
        assert!(p.kb == 1 || p.kb == 479, "{p:?}");
        p.validate(&prob).unwrap();
    }

    #[test]
    fn int8_and_f32_both_work() {
        let machine = xeon();
        let prob_f = MatmulProblem::new(512, 512, 256, 4);
        let prob_i = MatmulProblem::new(512, 512, 256, 1);
        let pf = choose_params(&machine, &prob_f, &Constraints::default());
        let pi = choose_params(&machine, &prob_i, &Constraints::default());
        pf.validate(&prob_f).unwrap();
        pi.validate(&prob_i).unwrap();
    }

    /// Small-batch MLP_1 layers under coarse-fusion constraints: a
    /// shared row-only decomposition of 16 rows yields at most 4-16
    /// M x N tasks on a 32-core machine — the underfilled pool of the
    /// paper's Figure 8 — so with `allow_k_slice` the search must split
    /// the reduction (`kpn > 1`) to widen the accumulation phase, and
    /// without it must stay at `kpn = 1`.
    #[test]
    fn mlp1_full_n_constraints_select_k_slicing() {
        let machine = xeon();
        // the shallow int8 layer (16x128x256, eb = 1) stays unsliced:
        // VNNI quarters the compute share, so splitting k = 256 no
        // longer covers the extra barrier — that boundary is the point
        // of the cost model, not a gap in it
        for &(m, n, k, eb) in &[
            (16usize, 256usize, 512usize, 4usize),
            (16, 256, 512, 1),
            (16, 128, 256, 4),
        ] {
            {
                let prob = MatmulProblem::new(m, n, k, eb);
                let sliced = choose_params(
                    &machine,
                    &prob,
                    &Constraints {
                        full_n_per_task: true,
                        allow_k_slice: true,
                        ..Constraints::default()
                    },
                );
                sliced.validate(&prob).unwrap();
                assert!(
                    sliced.kpn > 1,
                    "{m}x{n}x{k} eb{eb} full-N must k-slice, got {sliced:?}"
                );
                assert!(
                    prob.batch * sliced.tasks() < machine.cores,
                    "k-slicing is only chosen when M x N tasks underfill the pool"
                );
                let plain = choose_params(
                    &machine,
                    &prob,
                    &Constraints {
                        full_n_per_task: true,
                        ..Constraints::default()
                    },
                );
                assert_eq!(plain.kpn, 1);
            }
        }
    }

    /// Free (unconstrained) search on the default 32-core machine fills
    /// the pool by shattering N for MLP_1-sized shapes, so it must not
    /// pay the k-slicing barrier there; on a 128-core pool a deep-K
    /// narrow-M x N problem cannot be filled any other way and must
    /// slice.
    #[test]
    fn free_search_slices_only_on_underfilled_pools() {
        let machine = xeon();
        let prob = MatmulProblem::new(16, 256, 512, 4);
        let p = choose_params(
            &machine,
            &prob,
            &Constraints {
                allow_k_slice: true,
                ..Constraints::default()
            },
        );
        assert_eq!(p.kpn, 1, "N-shattering fills 32 cores: {p:?}");

        let mut wide = xeon();
        wide.cores = 128;
        let deep = MatmulProblem::new(16, 64, 8192, 4);
        let p = choose_params(
            &wide,
            &deep,
            &Constraints {
                allow_k_slice: true,
                ..Constraints::default()
            },
        );
        p.validate(&deep).unwrap();
        assert!(p.kpn > 1, "16x64x8192 @128 cores must k-slice, got {p:?}");
    }

    #[test]
    fn cost_orders_sane_vs_pathological() {
        let machine = xeon();
        let prob = MatmulProblem::new(512, 512, 512, 4);
        let good = MatmulParams {
            mpn: 8,
            npn: 4,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
        };
        let bad = MatmulParams {
            mpn: 1,
            npn: 1,
            mb: 1,
            nb: 1,
            kb: 1,
            bs: 1,
            kpn: 1,
        };
        assert!(estimate_cycles(&machine, &prob, &good) < estimate_cycles(&machine, &prob, &bad));
    }
}
