//! Template-based lowering for the oneDNN Graph Compiler reproduction.
//!
//! This crate turns a partitioned Graph IR into an executable Tensor IR
//! module, following the paper's approach of *expert templates plus
//! heuristics* rather than general loop transformation:
//!
//! - [`params`] / [`heuristic`] — the Figure-2 template parameters
//!   (`MPN/NPN/MB/NB/KB/BS`) and the cost-model search that picks them;
//! - [`anchors`] — the Figure-3 anchor cost table driving where fused
//!   pre-ops and post-ops commit;
//! - [`template`] — the matmul template itself: multi-core / single-core
//!   kernel loops around the batch-reduce GEMM microkernel, with fused
//!   pack pre-ops, int8 epilogue, staged post-ops with split reductions,
//!   and layout-aware output writes;
//! - [`standalone`] — unfused Fusible-OP lowering (also used for the
//!   constant-weight init functions);
//! - [`lower_graph`] — the driver: layout negotiation between chained
//!   matmuls, synthesized weight-prepack / compensation init functions,
//!   coarse-group function merging.

#![warn(missing_docs)]

pub mod anchors;
pub mod heuristic;
pub mod lower_graph;
pub mod params;
pub mod standalone;
pub mod template;

pub use heuristic::{
    choose_params, choose_params_ranked, Constraints, ParamChoice, ParamLog, ParamOverrides,
};
pub use lower_graph::{lower_partitions, LowerError, LowerOptions, Lowered};
pub use params::{EdgePolicy, MatmulParams, MatmulProblem};
pub use template::{lower_matmul, LoweredMatmul, MatmulSpec, PostOpSpec};

/// Largest divisor of `dim` that is at most `cap` (at least 1).
pub fn largest_divisor_at_most(dim: usize, cap: usize) -> usize {
    (1..=cap.min(dim))
        .rev()
        .find(|d| dim.is_multiple_of(*d))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn largest_divisor() {
        assert_eq!(super::largest_divisor_at_most(512, 32), 32);
        assert_eq!(super::largest_divisor_at_most(479, 64), 1);
        assert_eq!(super::largest_divisor_at_most(48, 32), 24);
        assert_eq!(super::largest_divisor_at_most(5, 10), 5);
    }
}
