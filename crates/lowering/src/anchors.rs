//! Anchor points and the Figure-3 cost table.
//!
//! The Tunable-OP template predefines *anchors* — placeholders at each
//! loop level where fused pre-ops and post-ops can be inserted. Each
//! anchor is associated with a tensor slice; once the template
//! parameters are known, the slice working-set size, the number of times
//! the fused op runs, and the total element accesses can all be deduced
//! (the paper's Figure 3 table). The fusion optimization evaluates these
//! costs and commits each fused op to the cheapest anchor.

use crate::params::{MatmulParams, MatmulProblem};
use gc_machine::MachineDescriptor;

/// Pre-op anchors, outermost (#1) to innermost (#5), per Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreOpAnchor {
    /// Before the `npi` parallel loop (whole A row-slice / whole B).
    A1,
    /// Inside `npi`, before `msi` (task's A and B slices).
    A2,
    /// Inside `msi`, before the k loop (one m-tile's K panels).
    A3,
    /// Inside the k loop, before `nsi` (one BS-chunk of A / B).
    A4,
    /// Inside `nsi` (single microkernel operands).
    A5,
}

/// Post-op anchors, innermost (#1) to outermost (#3), per Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostOpAnchor {
    /// After the k reduction of one m-tile (C slice `[MB, NSBN]`).
    P1,
    /// After the `msi` loop (task's C slice `[MSBN, NSBN]`).
    P2,
    /// After the `npi` loop (C row-slice `[MSBN, N]`).
    P3,
}

/// The Figure-3 row for one anchor: slice working set, invocation count
/// and total element accesses, per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorCost {
    /// Elements touched per invocation (tensor slice working set).
    pub working_set: usize,
    /// Invocations per single-core kernel.
    pub invocations: usize,
    /// Total element accesses per core (`working_set * invocations`).
    pub total_accesses: usize,
}

/// Which matmul operand a pre-op applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Activations `A`.
    A,
    /// Weights `B`.
    B,
}

/// Compute the Figure-3 row for a pre-op anchor.
pub fn pre_op_cost(
    anchor: PreOpAnchor,
    p: &MatmulParams,
    prob: &MatmulProblem,
    operand: Operand,
) -> AnchorCost {
    let msn = p.msn(prob.m).max(1);
    let nsn = p.nsn(prob.n).max(1);
    let ksn = p.ksn(prob.k).max(1);
    let npsn = (prob.n / p.nb).max(1);
    let (mb, nb, kb, bs) = (p.mb, p.nb, p.kb, p.bs);
    let (ws, inv) = match (operand, anchor) {
        (Operand::A, PreOpAnchor::A1) => (msn * ksn * mb * kb, 1),
        (Operand::A, PreOpAnchor::A2) => (msn * ksn * mb * kb, 1),
        (Operand::A, PreOpAnchor::A3) => (ksn * mb * kb, msn),
        (Operand::A, PreOpAnchor::A4) => (bs * mb * kb, msn * (ksn / bs).max(1)),
        (Operand::A, PreOpAnchor::A5) => (bs * mb * kb, msn * nsn * (ksn / bs).max(1)),
        (Operand::B, PreOpAnchor::A1) => (ksn * npsn * nb * kb, 1),
        (Operand::B, PreOpAnchor::A2) => (ksn * nsn * nb * kb, 1),
        (Operand::B, PreOpAnchor::A3) => (ksn * nsn * nb * kb, msn),
        (Operand::B, PreOpAnchor::A4) => (bs * nsn * nb * kb, msn * (ksn / bs).max(1)),
        (Operand::B, PreOpAnchor::A5) => (bs * nb * kb, msn * nsn * (ksn / bs).max(1)),
    };
    AnchorCost {
        working_set: ws,
        invocations: inv,
        total_accesses: ws * inv,
    }
}

/// Compute the Figure-3 row for a post-op anchor.
pub fn post_op_cost(anchor: PostOpAnchor, p: &MatmulParams, prob: &MatmulProblem) -> AnchorCost {
    let msn = p.msn(prob.m).max(1);
    let nsn = p.nsn(prob.n).max(1);
    let msbn = msn * p.mb;
    let nsbn = nsn * p.nb;
    let (ws, inv) = match anchor {
        PostOpAnchor::P1 => (p.mb * nsbn, msn),
        PostOpAnchor::P2 => (msbn * nsbn, 1),
        PostOpAnchor::P3 => (msbn * prob.n, 1),
    };
    AnchorCost {
        working_set: ws,
        invocations: inv,
        total_accesses: ws * inv,
    }
}

/// Per-element access cost (cycles) given a working set's likely cache
/// residency on `machine`.
pub fn per_element_cost(machine: &MachineDescriptor, working_set_bytes: usize) -> f64 {
    if working_set_bytes <= machine.l1_bytes() {
        1.0
    } else if working_set_bytes <= machine.l2_bytes() {
        2.5
    } else if working_set_bytes <= machine.llc_bytes() / machine.cores.max(1) {
        6.0
    } else {
        16.0
    }
}

/// Estimated cycles of running a fused op at an anchor: total accesses
/// weighted by residency of the slice.
pub fn anchor_cycles(machine: &MachineDescriptor, cost: &AnchorCost, elem_bytes: usize) -> f64 {
    cost.total_accesses as f64 * per_element_cost(machine, cost.working_set * elem_bytes)
}

/// Where the activation pack (pre-op reorder) is committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackPlacement {
    /// Anchor #2: pack the task's whole A slice up front.
    PerTask,
    /// Anchor #4: pack one BS-chunk per k iteration (paper's Figure 4).
    PerKChunk,
}

/// Choose the pack anchor for A by comparing anchor #2 and anchor #4
/// costs.
pub fn choose_a_pack(
    machine: &MachineDescriptor,
    p: &MatmulParams,
    prob: &MatmulProblem,
) -> PackPlacement {
    let c2 = pre_op_cost(PreOpAnchor::A2, p, prob, Operand::A);
    let c4 = pre_op_cost(PreOpAnchor::A4, p, prob, Operand::A);
    if anchor_cycles(machine, &c2, prob.elem_bytes) <= anchor_cycles(machine, &c4, prob.elem_bytes)
    {
        PackPlacement::PerTask
    } else {
        PackPlacement::PerKChunk
    }
}

/// Choose the post-op anchor for an elementwise group: #1 unless the
/// per-m-tile slice is so small that invocation overhead dominates.
pub fn choose_post_anchor(
    machine: &MachineDescriptor,
    p: &MatmulParams,
    prob: &MatmulProblem,
) -> PostOpAnchor {
    let c1 = post_op_cost(PostOpAnchor::P1, p, prob);
    let c2 = post_op_cost(PostOpAnchor::P2, p, prob);
    // fixed per-invocation overhead (loop setup / kernel call)
    let overhead = 20.0;
    // anchor #1 processes the slice immediately after the k-loop wrote
    // it (still in L1); anchor #2's buffered tiles must survive the
    // whole msi loop and come back from a colder level
    let staleness = 1.5;
    let t1 = anchor_cycles(machine, &c1, 4) + overhead * c1.invocations as f64;
    let t2 = staleness * anchor_cycles(machine, &c2, 4) + overhead * c2.invocations as f64;
    if t1 <= t2 {
        PostOpAnchor::P1
    } else {
        PostOpAnchor::P2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EdgePolicy;

    fn setup() -> (MachineDescriptor, MatmulParams, MatmulProblem) {
        let machine = MachineDescriptor::xeon_8358();
        let p = MatmulParams {
            mpn: 4,
            npn: 2,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        let prob = MatmulProblem::new(512, 256, 512, 4);
        (machine, p, prob)
    }

    #[test]
    fn figure3_total_access_identities() {
        // Per Figure 3: anchors #4 and #5 have the same total B access
        // count but different working sets.
        let (_, p, prob) = setup();
        let a4 = pre_op_cost(PreOpAnchor::A4, &p, &prob, Operand::B);
        let a5 = pre_op_cost(PreOpAnchor::A5, &p, &prob, Operand::B);
        assert_eq!(a4.total_accesses, a5.total_accesses);
        assert!(a5.working_set < a4.working_set);
    }

    #[test]
    fn figure3_a_anchor4_not_redundant_but_anchor5_is() {
        // For A, anchor #5 performs the same slice work NSN times.
        let (_, p, prob) = setup();
        let a4 = pre_op_cost(PreOpAnchor::A4, &p, &prob, Operand::A);
        let a5 = pre_op_cost(PreOpAnchor::A5, &p, &prob, Operand::A);
        assert_eq!(a5.total_accesses, a4.total_accesses * p.nsn(prob.n));
    }

    #[test]
    fn post_anchor1_smallest_working_set() {
        let (_, p, prob) = setup();
        let p1 = post_op_cost(PostOpAnchor::P1, &p, &prob);
        let p2 = post_op_cost(PostOpAnchor::P2, &p, &prob);
        let p3 = post_op_cost(PostOpAnchor::P3, &p, &prob);
        assert!(p1.working_set < p2.working_set);
        assert!(p2.working_set <= p3.working_set);
        assert_eq!(p1.total_accesses, p2.total_accesses);
    }

    #[test]
    fn per_element_cost_monotone_in_working_set() {
        let m = MachineDescriptor::xeon_8358();
        let c_small = per_element_cost(&m, 16 * 1024);
        let c_l2 = per_element_cost(&m, 512 * 1024);
        let c_big = per_element_cost(&m, 256 << 20);
        assert!(c_small < c_l2);
        assert!(c_l2 < c_big);
    }

    #[test]
    fn pack_choice_prefers_anchor4_for_large_slices() {
        // Huge K: the per-task A slice (anchor 2) blows the cache, so
        // packing per k-chunk (anchor 4, the paper's Figure 4) wins.
        let machine = MachineDescriptor::xeon_8358();
        let p = MatmulParams {
            mpn: 4,
            npn: 1,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        let prob = MatmulProblem::new(128, 512, 8192, 4);
        assert_eq!(choose_a_pack(&machine, &p, &prob), PackPlacement::PerKChunk);
    }

    #[test]
    fn post_anchor_choice_defaults_to_p1() {
        let (machine, p, prob) = setup();
        assert_eq!(choose_post_anchor(&machine, &p, &prob), PostOpAnchor::P1);
    }
}
