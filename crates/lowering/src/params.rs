//! Template parameters for Tunable-OP lowering.
//!
//! These mirror the paper's Figure-2 nomenclature: a matmul over
//! `A[M, K] x B[K, N]` is decomposed into `MPN x NPN` parallel
//! single-core kernels; each single-core kernel runs `MSN x NSN` loop
//! iterations whose innermost body calls a batch-reduce GEMM microkernel
//! over `[MB, NB, KB]` tiles with batch size `BS`.

/// Instantiation parameters of the matmul template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulParams {
    /// Parallel decomposition along m (number of single-core kernels).
    pub mpn: usize,
    /// Parallel decomposition along n.
    pub npn: usize,
    /// Microkernel tile rows.
    pub mb: usize,
    /// Microkernel tile columns.
    pub nb: usize,
    /// Microkernel tile reduction depth.
    pub kb: usize,
    /// Batch-reduce batch size (k tiles per microkernel call).
    pub bs: usize,
    /// Parallel decomposition along k (k-slicing). 1 means the plain
    /// template; `kpn > 1` splits the reduction across `kpn` workers
    /// per `(m, n)` task, each producing a partial accumulator that a
    /// second parallel phase reduces and feeds into the epilogue.
    pub kpn: usize,
}

/// A matmul problem to lower: `batch` independent `[m, k] x [k, n]`
/// multiplications (batch > 1 for the MHA batch matmuls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulProblem {
    /// Leading batch (product of all batch dims; 1 for plain matmul).
    pub batch: usize,
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Reduction.
    pub k: usize,
    /// Element size of the compute inputs in bytes (4 = f32, 1 = int8).
    pub elem_bytes: usize,
}

impl MatmulProblem {
    /// Plain 2-D problem.
    pub fn new(m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        MatmulProblem {
            batch: 1,
            m,
            n,
            k,
            elem_bytes,
        }
    }

    /// Batched problem.
    pub fn batched(batch: usize, m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        MatmulProblem {
            batch,
            m,
            n,
            k,
            elem_bytes,
        }
    }

    /// Total multiply-accumulate FLOPs (2 per MAC).
    pub fn flops(&self) -> f64 {
        2.0 * (self.batch * self.m * self.n * self.k) as f64
    }
}

impl MatmulParams {
    /// m-tiles per single-core kernel (`MSN`).
    pub fn msn(&self, m: usize) -> usize {
        m / self.mb / self.mpn
    }

    /// n-tiles per single-core kernel (`NSN`).
    pub fn nsn(&self, n: usize) -> usize {
        n / self.nb / self.npn
    }

    /// k-tiles total (`KSN`).
    pub fn ksn(&self, k: usize) -> usize {
        k / self.kb
    }

    /// Microkernel invocations in one k-sweep (`KSN / BS`).
    pub fn k_chunks(&self, k: usize) -> usize {
        self.ksn(k) / self.bs
    }

    /// Parallel tasks per matrix (`MPN * NPN`).
    ///
    /// k-slicing does not change this count: `kpn` widens the
    /// *accumulation* phase to `tasks * kpn` workers, but the output
    /// decomposition (and thus the epilogue/reduction phase) still has
    /// one task per `(m, n)` block.
    pub fn tasks(&self) -> usize {
        self.mpn * self.npn
    }

    /// k-tiles per k-slice (`KSN / KPN`).
    pub fn k_tiles_slice(&self, k: usize) -> usize {
        self.ksn(k) / self.kpn
    }

    /// Microkernel invocations in one k-slice's sweep.
    pub fn k_chunks_slice(&self, k: usize) -> usize {
        self.k_chunks(k) / self.kpn
    }

    /// Check the parameters exactly tile the problem.
    pub fn validate(&self, p: &MatmulProblem) -> Result<(), String> {
        let MatmulParams {
            mpn,
            npn,
            mb,
            nb,
            kb,
            bs,
            kpn,
        } = *self;
        if mb == 0 || nb == 0 || kb == 0 || bs == 0 || mpn == 0 || npn == 0 || kpn == 0 {
            return Err("zero parameter".to_string());
        }
        if !p.m.is_multiple_of(mb) {
            return Err(format!("mb {mb} does not divide m {}", p.m));
        }
        if !p.n.is_multiple_of(nb) {
            return Err(format!("nb {nb} does not divide n {}", p.n));
        }
        if !p.k.is_multiple_of(kb) {
            return Err(format!("kb {kb} does not divide k {}", p.k));
        }
        if !(p.m / mb).is_multiple_of(mpn) {
            return Err(format!("mpn {mpn} does not divide m-tiles {}", p.m / mb));
        }
        if !(p.n / nb).is_multiple_of(npn) {
            return Err(format!("npn {npn} does not divide n-tiles {}", p.n / nb));
        }
        if !(p.k / kb).is_multiple_of(bs) {
            return Err(format!("bs {bs} does not divide k-tiles {}", p.k / kb));
        }
        // Each k-slice must hold a whole number of brgemm chunks so the
        // sliced sweep is `k_chunks / kpn` full-width microkernel calls.
        if !(p.k / kb).is_multiple_of(bs * kpn) {
            return Err(format!(
                "kpn {kpn} does not evenly slice k-chunks {}",
                (p.k / kb) / bs
            ));
        }
        Ok(())
    }
}

/// All divisors of `n`, ascending.
pub fn divisors(n: usize) -> Vec<usize> {
    let mut d: Vec<usize> = (1..=n).filter(|x| n.is_multiple_of(*x)).collect();
    d.dedup();
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counts() {
        let p = MatmulParams {
            mpn: 4,
            npn: 2,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
        };
        // M=512: 16 m-tiles, 4 per kernel; N=256: 8 n-tiles, 4 per kernel
        assert_eq!(p.msn(512), 4);
        assert_eq!(p.nsn(256), 4);
        assert_eq!(p.ksn(256), 4);
        assert_eq!(p.k_chunks(256), 2);
        assert_eq!(p.tasks(), 8);
    }

    #[test]
    fn validate_catches_non_divisible() {
        let p = MatmulParams {
            mpn: 4,
            npn: 1,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
        };
        let prob = MatmulProblem::new(512, 256, 256, 4);
        p.validate(&prob).unwrap();
        let bad = MatmulProblem::new(500, 256, 256, 4);
        assert!(p.validate(&bad).is_err());
    }

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn flops_counts_batch() {
        let p = MatmulProblem::batched(4, 8, 8, 8, 4);
        assert_eq!(p.flops(), 2.0 * 4.0 * 512.0);
    }
}
