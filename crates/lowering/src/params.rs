//! Template parameters for Tunable-OP lowering.
//!
//! These mirror the paper's Figure-2 nomenclature: a matmul over
//! `A[M, K] x B[K, N]` is decomposed into `MPN x NPN` parallel
//! single-core kernels; each single-core kernel runs `MSN x NSN` loop
//! iterations whose innermost body calls a batch-reduce GEMM microkernel
//! over `[MB, NB, KB]` tiles with batch size `BS`.

/// How the template handles a ragged m edge (`m % MB != 0`).
///
/// K and N raggedness always use pad-and-go: the prepacked weight is
/// zero-padded to whole `[KB, NB]` tiles at pack time (a one-off
/// constant-fold cost), so the steady-state loops never see a partial
/// B tile. The m axis is the runtime-activation axis, so both policies
/// are real choices and the heuristic prices them against each other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EdgePolicy {
    /// Zero-pad the packed A edge tile to full `MB` rows and run only
    /// full-size microkernels; the clamped output store discards the
    /// pad rows. Wastes `MB - m % MB` rows of compute on the edge row
    /// of tiles but keeps every brgemm call on the hot path.
    #[default]
    Pad,
    /// Emit clamped (tail) brgemm calls that compute only the valid
    /// rows. No wasted FLOPs, but every call pays a small clamp /
    /// dispatch overhead (the template has no branches, so interior
    /// tiles also route through the clamped entry point).
    Tail,
}

/// Instantiation parameters of the matmul template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulParams {
    /// Parallel decomposition along m (number of single-core kernels).
    pub mpn: usize,
    /// Parallel decomposition along n.
    pub npn: usize,
    /// Microkernel tile rows.
    pub mb: usize,
    /// Microkernel tile columns.
    pub nb: usize,
    /// Microkernel tile reduction depth.
    pub kb: usize,
    /// Batch-reduce batch size (k tiles per microkernel call).
    pub bs: usize,
    /// Parallel decomposition along k (k-slicing). 1 means the plain
    /// template; `kpn > 1` splits the reduction across `kpn` workers
    /// per `(m, n)` task, each producing a partial accumulator that a
    /// second parallel phase reduces and feeds into the epilogue.
    pub kpn: usize,
    /// Edge policy for a ragged m (`m % mb != 0`); irrelevant (and
    /// conventionally [`EdgePolicy::Pad`]) when mb divides m.
    pub edge: EdgePolicy,
}

/// A matmul problem to lower: `batch` independent `[m, k] x [k, n]`
/// multiplications (batch > 1 for the MHA batch matmuls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulProblem {
    /// Leading batch (product of all batch dims; 1 for plain matmul).
    pub batch: usize,
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Reduction.
    pub k: usize,
    /// Element size of the compute inputs in bytes (4 = f32, 1 = int8).
    pub elem_bytes: usize,
}

impl MatmulProblem {
    /// Plain 2-D problem.
    pub fn new(m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        MatmulProblem {
            batch: 1,
            m,
            n,
            k,
            elem_bytes,
        }
    }

    /// Batched problem.
    pub fn batched(batch: usize, m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        MatmulProblem {
            batch,
            m,
            n,
            k,
            elem_bytes,
        }
    }

    /// Total multiply-accumulate FLOPs (2 per MAC).
    pub fn flops(&self) -> f64 {
        2.0 * (self.batch * self.m * self.n * self.k) as f64
    }
}

impl MatmulParams {
    /// m-tiles total, counting a partial edge tile as whole (the pack
    /// stage pads it to full `MB` rows).
    pub fn m_tiles(&self, m: usize) -> usize {
        m.div_ceil(self.mb)
    }

    /// n-tiles total, counting a partial edge tile as whole.
    pub fn n_tiles(&self, n: usize) -> usize {
        n.div_ceil(self.nb)
    }

    /// True iff `mb` does not divide m (a padded or tail edge tile row
    /// exists).
    pub fn ragged_m(&self, m: usize) -> bool {
        !m.is_multiple_of(self.mb)
    }

    /// True iff `nb` does not divide n.
    pub fn ragged_n(&self, n: usize) -> bool {
        !n.is_multiple_of(self.nb)
    }

    /// True iff `kb` does not divide k.
    pub fn ragged_k(&self, k: usize) -> bool {
        !k.is_multiple_of(self.kb)
    }

    /// m-tiles per single-core kernel (`MSN`).
    pub fn msn(&self, m: usize) -> usize {
        self.m_tiles(m) / self.mpn
    }

    /// n-tiles per single-core kernel (`NSN`).
    pub fn nsn(&self, n: usize) -> usize {
        self.n_tiles(n) / self.npn
    }

    /// k-tiles total (`KSN`), counting a partial (zero-padded) edge
    /// tile as whole.
    pub fn ksn(&self, k: usize) -> usize {
        k.div_ceil(self.kb)
    }

    /// Microkernel invocations in one k-sweep (`KSN / BS`).
    pub fn k_chunks(&self, k: usize) -> usize {
        self.ksn(k) / self.bs
    }

    /// Parallel tasks per matrix (`MPN * NPN`).
    ///
    /// k-slicing does not change this count: `kpn` widens the
    /// *accumulation* phase to `tasks * kpn` workers, but the output
    /// decomposition (and thus the epilogue/reduction phase) still has
    /// one task per `(m, n)` block.
    pub fn tasks(&self) -> usize {
        self.mpn * self.npn
    }

    /// k-tiles per k-slice (`KSN / KPN`).
    pub fn k_tiles_slice(&self, k: usize) -> usize {
        self.ksn(k) / self.kpn
    }

    /// Microkernel invocations in one k-slice's sweep.
    pub fn k_chunks_slice(&self, k: usize) -> usize {
        self.k_chunks(k) / self.kpn
    }

    /// Check the parameters tile the problem.
    ///
    /// Tiling is *ceil-based*: a dimension that is not a multiple of
    /// its block still validates — the edge tile is zero-padded at pack
    /// time (or, for m under [`EdgePolicy::Tail`], clamped at run
    /// time) — but the resulting whole-tile counts must divide evenly
    /// across the parallel decomposition. K-slicing (`kpn > 1`) keeps
    /// the strict rules: the sliced template splits the reduction by
    /// exact arithmetic on all three axes and has no edge-tile support.
    pub fn validate(&self, p: &MatmulProblem) -> Result<(), String> {
        let MatmulParams {
            mpn,
            npn,
            mb,
            nb,
            kb,
            bs,
            kpn,
            edge: _,
        } = *self;
        if mb == 0 || nb == 0 || kb == 0 || bs == 0 || mpn == 0 || npn == 0 || kpn == 0 {
            return Err("zero parameter".to_string());
        }
        if kpn > 1 {
            if !p.m.is_multiple_of(mb) {
                return Err(format!("k-sliced: mb {mb} does not divide m {}", p.m));
            }
            if !p.n.is_multiple_of(nb) {
                return Err(format!("k-sliced: nb {nb} does not divide n {}", p.n));
            }
            if !p.k.is_multiple_of(kb) {
                return Err(format!("k-sliced: kb {kb} does not divide k {}", p.k));
            }
        }
        let m_tiles = p.m.div_ceil(mb);
        let n_tiles = p.n.div_ceil(nb);
        let k_tiles = p.k.div_ceil(kb);
        if !m_tiles.is_multiple_of(mpn) {
            return Err(format!("mpn {mpn} does not divide m-tiles {m_tiles}"));
        }
        if !n_tiles.is_multiple_of(npn) {
            return Err(format!("npn {npn} does not divide n-tiles {n_tiles}"));
        }
        if !k_tiles.is_multiple_of(bs) {
            return Err(format!("bs {bs} does not divide k-tiles {k_tiles}"));
        }
        // Each k-slice must hold a whole number of brgemm chunks so the
        // sliced sweep is `k_chunks / kpn` full-width microkernel calls.
        if !k_tiles.is_multiple_of(bs * kpn) {
            return Err(format!(
                "kpn {kpn} does not evenly slice k-chunks {}",
                k_tiles / bs
            ));
        }
        Ok(())
    }
}

/// All divisors of `n`, ascending.
pub fn divisors(n: usize) -> Vec<usize> {
    let mut d: Vec<usize> = (1..=n).filter(|x| n.is_multiple_of(*x)).collect();
    d.dedup();
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counts() {
        let p = MatmulParams {
            mpn: 4,
            npn: 2,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        // M=512: 16 m-tiles, 4 per kernel; N=256: 8 n-tiles, 4 per kernel
        assert_eq!(p.msn(512), 4);
        assert_eq!(p.nsn(256), 4);
        assert_eq!(p.ksn(256), 4);
        assert_eq!(p.k_chunks(256), 2);
        assert_eq!(p.tasks(), 8);
    }

    #[test]
    fn validate_is_ceil_based() {
        let p = MatmulParams {
            mpn: 4,
            npn: 1,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 2,
            kpn: 1,
            edge: EdgePolicy::Pad,
        };
        let prob = MatmulProblem::new(512, 256, 256, 4);
        p.validate(&prob).unwrap();
        // m = 500 is ragged (500 = 15*32 + 20) but its 16 whole-or-
        // padded tiles still split 4 ways — valid under ceil tiling.
        let ragged = MatmulProblem::new(500, 256, 256, 4);
        p.validate(&ragged).unwrap();
        assert!(p.ragged_m(500) && !p.ragged_n(256) && !p.ragged_k(256));
        assert_eq!(p.m_tiles(500), 16);
        // m = 420 gives ceil(420/32) = 14 tiles, not divisible by 4.
        let bad = MatmulProblem::new(420, 256, 256, 4);
        assert!(p.validate(&bad).is_err());
    }

    #[test]
    fn validate_k_sliced_requires_exact_tiling() {
        let p = MatmulParams {
            mpn: 2,
            npn: 1,
            mb: 32,
            nb: 32,
            kb: 64,
            bs: 1,
            kpn: 2,
            edge: EdgePolicy::Pad,
        };
        p.validate(&MatmulProblem::new(128, 256, 256, 4)).unwrap();
        // Ragged m validates at kpn = 1 but must be rejected once the
        // reduction is k-sliced (the sliced template has no edge tiles).
        let ragged = MatmulProblem::new(100, 256, 256, 4);
        assert!(p.validate(&ragged).is_err());
        let unsliced = MatmulParams { kpn: 1, ..p };
        unsliced.validate(&ragged).unwrap();
    }

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn flops_counts_batch() {
        let p = MatmulProblem::batched(4, 8, 8, 8, 4);
        assert_eq!(p.flops(), 2.0 * 4.0 * 512.0);
    }
}
