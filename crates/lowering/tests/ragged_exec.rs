//! Ragged-shape template tests: drive every M/N/K residue class modulo
//! the block sizes through pack → brgemm → unpack under both edge
//! policies (pad-and-go and tail kernels), check int8 stays bit-exact
//! between the interpreter and the checked plan executor, and prove the
//! validator rejects an edge tile that would overrun logical bounds.

use gc_lowering::template::{AInput, BInput, Int8Spec, OutLayout, PostOpSpec};
use gc_lowering::{lower_matmul, EdgePolicy, MatmulParams, MatmulProblem, MatmulSpec};
use gc_machine::MachineDescriptor;
use gc_runtime::ThreadPool;
use gc_tensor::{reference, reorder, DataType, Layout, Storage, Tensor};
use gc_tir::plan::{run_plan_call_opts, PlanScratch};
use gc_tir::{
    compile_module, validate_module, AxisClamp, BufDecl, BufId, Call, ExecOptions, Expr, Func,
    GlobalDecl, GlobalKind, Intrinsic, Module, Stmt, View,
};

fn machine() -> MachineDescriptor {
    MachineDescriptor::xeon_8358()
}

fn default_spec(problem: MatmulProblem, params: MatmulParams) -> MatmulSpec {
    MatmulSpec {
        problem,
        params,
        int8: None,
        bias: false,
        a_input: AInput::Plain,
        b_input: BInput::BlockedWeight,
        post_ops: vec![],
        out: OutLayout::Plain,
        out_dtype: DataType::F32,
        forced_post_anchor: None,
        forced_pack: None,
    }
}

/// Build the module a lowered template runs in: one scratch global per
/// parameter, one main call.
fn build_module(spec: &MatmulSpec) -> (Module, usize) {
    let lowered = lower_matmul(&machine(), spec, "t");
    let mut m = Module::new();
    let decls = lowered.func.params.clone();
    let fi = m.add_func(lowered.func);
    for (i, d) in decls.iter().enumerate() {
        m.add_global(GlobalDecl {
            dtype: d.dtype,
            elems: d.elems,
            kind: GlobalKind::Scratch,
            name: format!("g{i}"),
        });
    }
    m.main_calls.push(Call {
        func: fi,
        args: (0..decls.len()).collect(),
    });
    m.validate().expect("module validates");
    (m, fi)
}

fn run(spec: &MatmulSpec, tensors: Vec<Storage>) -> Vec<Storage> {
    let (m, _) = build_module(spec);
    let mut globals = tensors;
    assert_eq!(globals.len(), m.globals.len(), "one storage per param");
    gc_tir::exec::run_module(&m, &mut globals, &ThreadPool::new(2), true).expect("run");
    globals
}

/// Zero-pad a plain `[k, n]` f32 weight to ceil-of-block extents — the
/// logical image of what the padded prepack path produces.
fn pad_f32(w: &Tensor, k: usize, n: usize, kp: usize, np: usize) -> Tensor {
    let s = w.f32_slice().unwrap();
    let mut out = vec![0.0f32; kp * np];
    for r in 0..k {
        out[r * np..r * np + n].copy_from_slice(&s[r * n..(r + 1) * n]);
    }
    Tensor::from_vec_f32(&[kp, np], out).unwrap()
}

fn pad_i8(w: &Tensor, k: usize, n: usize, kp: usize, np: usize) -> Tensor {
    let s = w.i8_slice().unwrap();
    let mut out = vec![0i8; kp * np];
    for r in 0..k {
        out[r * np..r * np + n].copy_from_slice(&s[r * n..(r + 1) * n]);
    }
    Tensor::from_vec_i8(&[kp, np], out).unwrap()
}

/// Padded blocked weight: what the constant-fold prepack emits for a
/// ragged `[k, n]` weight with `[kb, nb]` blocks.
fn padded_blocked_f32(w: &Tensor, k: usize, n: usize, kb: usize, nb: usize) -> Storage {
    let padded = pad_f32(w, k, n, k.div_ceil(kb) * kb, n.div_ceil(nb) * nb);
    reorder::reorder(&padded, Layout::blocked_b(2, kb, nb))
        .unwrap()
        .into_storage()
}

fn padded_blocked_i8(w: &Tensor, k: usize, n: usize, kb: usize, nb: usize) -> (Storage, Vec<i32>) {
    let (kp, np) = (k.div_ceil(kb) * kb, n.div_ceil(nb) * nb);
    let padded = pad_i8(w, k, n, kp, np);
    // Pad rows are zero, so the compensation over the padded weight
    // equals the logical column sums (zeros in the pad columns).
    let comp = gc_tensor::quant::weight_compensation(padded.i8_slice().unwrap(), kp, np);
    let blocked = reorder::reorder(&padded, Layout::blocked_b(2, kb, nb))
        .unwrap()
        .into_storage();
    (blocked, comp)
}

fn max_diff(a: &Storage, want: &Tensor) -> f64 {
    let n = want.desc().volume();
    (0..n)
        .map(|i| (a.get_as_f64(i) - want.storage().get_as_f64(i)).abs())
        .fold(0.0, f64::max)
}

/// Every residue class of m, n, k modulo the 8-element blocks (9..=16
/// covers residues 1..=7 and the exact case), under both edge policies.
/// Pad zero-fills A/B edge tiles at pack time; Tail clamps the brgemm M
/// extent. Both must match the naive reference within 1e-5.
#[test]
fn f32_residue_sweep_pad_and_tail() {
    let (mb, nb, kb) = (8, 8, 8);
    for edge in [EdgePolicy::Pad, EdgePolicy::Tail] {
        for m in 9..=16 {
            for n in 9..=16 {
                for k in 9..=16 {
                    let p = MatmulParams {
                        mpn: 1,
                        npn: 1,
                        mb,
                        nb,
                        kb,
                        bs: 1,
                        kpn: 1,
                        edge,
                    };
                    let prob = MatmulProblem::new(m, n, k, 4);
                    let spec = default_spec(prob, p);
                    let a = Tensor::random(&[m, k], DataType::F32, (m * 289 + n * 17 + k) as u64);
                    let w = Tensor::random(&[k, n], DataType::F32, (n * 289 + k * 17 + m) as u64);
                    let want = reference::matmul_f32(&a, &w).unwrap();
                    let out = run(
                        &spec,
                        vec![
                            a.storage().clone(),
                            padded_blocked_f32(&w, k, n, kb, nb),
                            Storage::F32(vec![0.0; m * n]),
                        ],
                    );
                    let d = max_diff(&out[2], &want);
                    assert!(d < 1e-5, "{edge:?} m={m} n={n} k={k}: max diff {d}");
                }
            }
        }
    }
}

/// Ragged shapes on a batched problem with multiple k-chunks: the
/// accumulate path (beta=1 brgemm over chunk 2..) must also see only
/// full or properly clamped tiles.
#[test]
fn f32_ragged_batched_multi_chunk() {
    let (m, n, k, batch) = (13, 21, 27, 3);
    for edge in [EdgePolicy::Pad, EdgePolicy::Tail] {
        let p = MatmulParams {
            mpn: 2,
            npn: 3,
            mb: 4,
            nb: 8,
            kb: 8,
            bs: 2,
            kpn: 1,
            edge,
        };
        let prob = MatmulProblem::batched(batch, m, n, k, 4);
        let spec = default_spec(prob, p);
        let a = Tensor::random(&[batch, m, k], DataType::F32, 5);
        let w = Tensor::random(&[k, n], DataType::F32, 6);
        let wrep = {
            let s = w.f32_slice().unwrap();
            let mut v = Vec::with_capacity(batch * k * n);
            for _ in 0..batch {
                v.extend_from_slice(s);
            }
            Tensor::from_vec_f32(&[batch, k, n], v).unwrap()
        };
        let want = reference::matmul_f32(&a, &wrep).unwrap();
        let out = run(
            &spec,
            vec![
                a.storage().clone(),
                padded_blocked_f32(&w, k, n, 8, 8),
                Storage::F32(vec![0.0; batch * m * n]),
            ],
        );
        let d = max_diff(&out[2], &want);
        assert!(d < 1e-5, "{edge:?}: max diff {d}");
    }
}

/// int8 with zero-point compensation on an all-ragged shape: padded A
/// columns multiply padded B rows (both zero), comp over the padded
/// weight equals the logical column sums, and the clamped unpack
/// discards the pad rows/cols — so the result must be exactly the
/// interpreter's, bit for bit, under checked plan execution.
#[test]
fn int8_ragged_plan_matches_interpreter_bitexact() {
    let (m, n, k) = (13, 11, 15);
    let (a_s, b_s, a_zero) = (0.1f32, 0.05f32, 7);
    for edge in [EdgePolicy::Pad, EdgePolicy::Tail] {
        let p = MatmulParams {
            mpn: 1,
            npn: 1,
            mb: 8,
            nb: 8,
            kb: 8,
            bs: 1,
            kpn: 1,
            edge,
        };
        let prob = MatmulProblem::new(m, n, k, 1);
        let mut spec = default_spec(prob, p);
        spec.int8 = Some(Int8Spec {
            a_zero,
            scale: a_s * b_s,
        });
        spec.post_ops = vec![PostOpSpec::Quantize {
            scale: 0.07,
            zero_point: 11,
        }];
        spec.out_dtype = DataType::U8;

        let a = Tensor::random(&[m, k], DataType::U8, 21);
        let w = Tensor::random(&[k, n], DataType::I8, 22);
        let (wb, comp) = padded_blocked_i8(&w, k, n, p.kb, p.nb);
        let inputs = vec![
            a.storage().clone(),
            wb,
            Storage::I32(comp),
            Storage::U8(vec![0; m * n]),
        ];

        // Interpreter.
        let interp = run(&spec, inputs.clone());

        // Checked plan executor on the same module.
        let (module, fi) = build_module(&spec);
        let plan = compile_module(&module, 1);
        assert!(
            plan.func(fi).is_some(),
            "ragged template must compile to a plan"
        );
        let pool = ThreadPool::new(1);
        let mut globals = inputs;
        let mut scratch = PlanScratch::for_plan(&plan);
        run_plan_call_opts(
            &plan,
            fi,
            &module.main_calls[0].args,
            &mut globals,
            &pool,
            &mut scratch,
            ExecOptions::checked(),
        );

        match (&interp[3], &globals[3]) {
            (Storage::U8(a), Storage::U8(b)) => {
                assert_eq!(a, b, "{edge:?}: interpreter vs checked plan differ")
            }
            _ => panic!("output dtype changed"),
        }

        // And both agree with the dequantized reference to one ulp of
        // the output quantization grid.
        let a_f = reference::dequantize(&a, gc_tensor::QuantParams::new(a_s, a_zero)).unwrap();
        let w_f = reference::dequantize(&w, gc_tensor::QuantParams::symmetric(b_s)).unwrap();
        let mm = reference::matmul_f32(&a_f, &w_f).unwrap();
        let want =
            reference::quantize(&mm, DataType::U8, gc_tensor::QuantParams::new(0.07, 11)).unwrap();
        for i in 0..m * n {
            let d = (interp[3].get_as_f64(i) - want.storage().get_as_f64(i)).abs();
            assert!(d <= 1.0, "{edge:?} elem {i}: off by {d}");
        }
    }
}

/// The validator must reject an edge tile whose clamp claims a logical
/// extent larger than the destination buffer: the worst-case span of an
/// `Unpack2DClamp` is computed from the *logical* extents, so a clamp
/// that could reach past the buffer end is a hard error, not a runtime
/// surprise.
#[test]
fn validator_rejects_overrunning_edge_tile() {
    let build = |dst_elems: usize| {
        let func = Func {
            name: "edge".into(),
            params: vec![
                BufDecl::new(DataType::F32, 64, "tile"),
                BufDecl::new(DataType::F32, dst_elems, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![Stmt::Op(Intrinsic::Unpack2DClamp {
                src: View::new(BufId::Param(0), Expr::c(0), 64),
                dst: BufId::Param(1),
                dst_offset: Expr::c(0),
                dst_row_stride: 8,
                dst_col_stride: 1,
                rows: 8,
                cols: 8,
                // Claims the logical array is 8x8 rows x cols: the
                // clamped store may reach element 7*8 + 7 = 63.
                row_clamp: AxisClamp::new(Expr::c(0), 8),
                col_clamp: AxisClamp::new(Expr::c(0), 8),
            })],
        };
        let mut m = Module::new();
        let g0 = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 64,
            kind: GlobalKind::Input(0),
            name: "tile".into(),
        });
        let g1 = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: dst_elems,
            kind: GlobalKind::Scratch,
            name: "out".into(),
        });
        let f = m.add_func(func);
        m.main_calls.push(Call {
            func: f,
            args: vec![g0, g1],
        });
        m
    };
    // A destination exactly covering the logical extents is fine...
    let ok = validate_module(&build(64));
    assert!(ok.is_ok(), "exact-fit edge tile rejected: {ok:?}");
    // ...but one element short means the worst-case edge tile could
    // write out of bounds, and interval analysis must reject it.
    let err = validate_module(&build(63));
    assert!(err.is_err(), "overrunning edge tile accepted: {err:?}");
}
