//! Direct template tests: instantiate `lower_matmul` with hand-picked
//! parameters and execute the resulting function, checking against the
//! naive reference. This exercises every template axis independently of
//! the graph pipeline: A blocked/plain, B weight/in-loop(/transposed),
//! int8 epilogue, bias, each post-op kind, both output layouts, both
//! post-op anchors, and both pack placements.

use gc_lowering::anchors::{PackPlacement, PostOpAnchor};
use gc_lowering::template::{AInput, BInput, Int8Spec, OutLayout, ParamRole, PostOpSpec};
use gc_lowering::{lower_matmul, EdgePolicy, MatmulParams, MatmulProblem, MatmulSpec};
use gc_machine::MachineDescriptor;
use gc_microkernel::{BinaryOp, UnaryOp};
use gc_runtime::ThreadPool;
use gc_tensor::{reference, reorder, DataType, Layout, Storage, Tensor};
use gc_tir::{Call, GlobalDecl, GlobalKind, Module, ReduceOp};

fn machine() -> MachineDescriptor {
    MachineDescriptor::xeon_8358()
}

fn default_spec(problem: MatmulProblem, params: MatmulParams) -> MatmulSpec {
    MatmulSpec {
        problem,
        params,
        int8: None,
        bias: false,
        a_input: AInput::Plain,
        b_input: BInput::BlockedWeight,
        post_ops: vec![],
        out: OutLayout::Plain,
        out_dtype: DataType::F32,
        forced_post_anchor: None,
        forced_pack: None,
    }
}

/// Execute a lowered template on the given tensors (B already in the
/// layout the spec expects) and return the flat output.
fn run(spec: &MatmulSpec, tensors: Vec<Storage>) -> Vec<Storage> {
    let lowered = lower_matmul(&machine(), spec, "t");
    let mut m = Module::new();
    let decls = lowered.func.params.clone();
    let fi = m.add_func(lowered.func);
    for (i, d) in decls.iter().enumerate() {
        m.add_global(GlobalDecl {
            dtype: d.dtype,
            elems: d.elems,
            kind: GlobalKind::Scratch,
            name: format!("g{i}"),
        });
    }
    m.main_calls.push(Call {
        func: fi,
        args: (0..decls.len()).collect(),
    });
    m.validate().expect("module validates");
    let mut globals = tensors;
    assert_eq!(globals.len(), decls.len(), "one storage per param");
    gc_tir::exec::run_module(&m, &mut globals, &ThreadPool::new(2), true).expect("run");
    globals
}

fn blocked_weight(w: &Tensor, kb: usize, nb: usize) -> Storage {
    let b = reorder::reorder(w, Layout::blocked_b(2, kb, nb)).unwrap();
    b.into_storage()
}

fn max_diff(a: &Storage, want: &Tensor) -> f64 {
    let n = want.desc().volume();
    (0..n)
        .map(|i| (a.get_as_f64(i) - want.storage().get_as_f64(i)).abs())
        .fold(0.0, f64::max)
}

#[test]
fn f32_plain_in_plain_out() {
    let (m, n, k) = (16, 24, 32);
    let p = MatmulParams {
        mpn: 2,
        npn: 3,
        mb: 4,
        nb: 8,
        kb: 16,
        bs: 2,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let prob = MatmulProblem::new(m, n, k, 4);
    let spec = default_spec(prob, p);
    let a = Tensor::random(&[m, k], DataType::F32, 1);
    let w = Tensor::random(&[k, n], DataType::F32, 2);
    let want = reference::matmul_f32(&a, &w).unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    assert!(max_diff(&out[2], &want) < 1e-4);
}

#[test]
fn f32_every_post_op_kind_chained() {
    // matmul -> *2.0 -> +rowvec -> relu, blocked out
    let (m, n, k) = (8, 16, 8);
    let p = MatmulParams {
        mpn: 1,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 1,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let prob = MatmulProblem::new(m, n, k, 4);
    let mut spec = default_spec(prob, p);
    spec.post_ops = vec![
        PostOpSpec::BinaryScalarConst(BinaryOp::Mul, 2.0),
        PostOpSpec::BinaryRowVec {
            op: BinaryOp::Add,
            batch_indexed: false,
        },
        PostOpSpec::Unary(UnaryOp::Relu),
    ];
    spec.out = OutLayout::BlockedMbNb;
    let lowered = lower_matmul(&machine(), &spec, "t");
    assert_eq!(
        lowered.roles,
        vec![
            ParamRole::A,
            ParamRole::B,
            ParamRole::PostOperand(1),
            ParamRole::Out
        ]
    );
    let a = Tensor::random(&[m, k], DataType::F32, 3);
    let w = Tensor::random(&[k, n], DataType::F32, 4);
    let bias = Tensor::random(&[n], DataType::F32, 5);
    let mm = reference::matmul_f32(&a, &w).unwrap();
    let scaled = reference::binary(
        reference::BinaryKind::Mul,
        &mm,
        &Tensor::from_vec_f32(&[1], vec![2.0]).unwrap(),
    )
    .unwrap();
    let biased = reference::bias_add(&scaled, &bias).unwrap();
    let want_plain = reference::relu(&biased).unwrap();
    let want = reorder::reorder(&want_plain, Layout::blocked_a(2, p.mb, p.nb)).unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            bias.storage().clone(),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    // compare in storage order against the blocked want
    let n_el = m * n;
    let ws = want.f32_slice().unwrap();
    for (i, &w) in ws.iter().enumerate().take(n_el) {
        assert!((out[3].get_as_f64(i) - w as f64).abs() < 1e-4, "elem {i}");
    }
}

#[test]
fn f32_bias_slot() {
    let (m, n, k) = (8, 8, 8);
    let p = MatmulParams {
        mpn: 1,
        npn: 1,
        mb: 8,
        nb: 8,
        kb: 8,
        bs: 1,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
    spec.bias = true;
    let a = Tensor::random(&[m, k], DataType::F32, 6);
    let w = Tensor::random(&[k, n], DataType::F32, 7);
    let bias = Tensor::random(&[n], DataType::F32, 8);
    let want = reference::bias_add(&reference::matmul_f32(&a, &w).unwrap(), &bias).unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            bias.storage().clone(),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    assert!(max_diff(&out[3], &want) < 1e-4);
}

#[test]
fn int8_epilogue_with_quantized_output() {
    let (m, n, k) = (8, 8, 16);
    let p = MatmulParams {
        mpn: 2,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 2,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let prob = MatmulProblem::new(m, n, k, 1);
    let mut spec = default_spec(prob, p);
    let (a_zero, a_s, b_s) = (5, 0.1f32, 0.2f32);
    spec.int8 = Some(Int8Spec {
        a_zero,
        scale: a_s * b_s,
    });
    spec.post_ops = vec![PostOpSpec::Quantize {
        scale: 0.05,
        zero_point: 9,
    }];
    spec.out_dtype = DataType::U8;

    let a = Tensor::random(&[m, k], DataType::U8, 9);
    let w = Tensor::random(&[k, n], DataType::I8, 10);
    // compensation vector
    let comp = gc_tensor::quant::weight_compensation(w.i8_slice().unwrap(), k, n);
    // reference: dequantize -> matmul -> quantize
    let a_f = reference::dequantize(&a, gc_tensor::QuantParams::new(a_s, a_zero)).unwrap();
    let w_f = reference::dequantize(&w, gc_tensor::QuantParams::symmetric(b_s)).unwrap();
    let mm = reference::matmul_f32(&a_f, &w_f).unwrap();
    let want =
        reference::quantize(&mm, DataType::U8, gc_tensor::QuantParams::new(0.05, 9)).unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            Storage::I32(comp),
            Storage::U8(vec![0; m * n]),
        ],
    );
    for i in 0..m * n {
        let d = (out[3].get_as_f64(i) - want.storage().get_as_f64(i)).abs();
        assert!(d <= 1.0, "elem {i}: {d}");
    }
}

#[test]
fn batched_in_loop_rhs_with_transpose() {
    // Q x K^T with K provided untransposed (the MHA pre-op pattern)
    let (bh, s, d) = (3, 8, 16);
    let p = MatmulParams {
        mpn: 2,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 1,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let prob = MatmulProblem::batched(bh, s, s, d, 4);
    let mut spec = default_spec(prob, p);
    spec.b_input = BInput::PlainInLoop { transposed: true };
    let q = Tensor::random(&[bh, s, d], DataType::F32, 11);
    let kt_src = Tensor::random(&[bh, s, d], DataType::F32, 12);
    let k_t = reorder::transpose_last2(&kt_src).unwrap();
    let want = reference::matmul_f32(&q, &k_t).unwrap();
    let out = run(
        &spec,
        vec![
            q.storage().clone(),
            kt_src.storage().clone(),
            Storage::F32(vec![0.0; bh * s * s]),
        ],
    );
    assert!(max_diff(&out[2], &want) < 1e-4);
}

#[test]
fn split_reduction_softmax_post_ops() {
    let (m, n, k) = (8, 16, 8);
    let p = MatmulParams {
        mpn: 2,
        npn: 1,
        mb: 4,
        nb: 4,
        kb: 8,
        bs: 1,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
    spec.post_ops = vec![
        PostOpSpec::ReduceRow(ReduceOp::Max),
        PostOpSpec::BinaryColStat { op: BinaryOp::Sub },
        PostOpSpec::Unary(UnaryOp::Exp),
        PostOpSpec::ReduceRow(ReduceOp::Sum),
        PostOpSpec::BinaryColStat { op: BinaryOp::Div },
    ];
    let a = Tensor::random(&[m, k], DataType::F32, 13);
    let w = Tensor::random(&[k, n], DataType::F32, 14);
    let want = reference::softmax_last_axis(&reference::matmul_f32(&a, &w).unwrap()).unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    assert!(max_diff(&out[2], &want) < 1e-5);
}

#[test]
fn both_post_anchors_agree() {
    let (m, n, k) = (16, 16, 16);
    let p = MatmulParams {
        mpn: 1,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 2,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let a = Tensor::random(&[m, k], DataType::F32, 15);
    let w = Tensor::random(&[k, n], DataType::F32, 16);
    let mut outs = Vec::new();
    for anchor in [PostOpAnchor::P1, PostOpAnchor::P2] {
        let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
        spec.post_ops = vec![PostOpSpec::Unary(UnaryOp::Gelu)];
        spec.forced_post_anchor = Some(anchor);
        let out = run(
            &spec,
            vec![
                a.storage().clone(),
                blocked_weight(&w, p.kb, p.nb),
                Storage::F32(vec![0.0; m * n]),
            ],
        );
        outs.push(out[2].as_slice::<f32>().unwrap().to_vec());
    }
    assert_eq!(outs[0], outs[1]);
}

#[test]
fn both_pack_placements_agree() {
    let (m, n, k) = (16, 8, 32);
    let p = MatmulParams {
        mpn: 2,
        npn: 1,
        mb: 8,
        nb: 8,
        kb: 8,
        bs: 2,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let a = Tensor::random(&[m, k], DataType::F32, 17);
    let w = Tensor::random(&[k, n], DataType::F32, 18);
    let mut outs = Vec::new();
    for pack in [PackPlacement::PerTask, PackPlacement::PerKChunk] {
        let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
        spec.forced_pack = Some(pack);
        let out = run(
            &spec,
            vec![
                a.storage().clone(),
                blocked_weight(&w, p.kb, p.nb),
                Storage::F32(vec![0.0; m * n]),
            ],
        );
        outs.push(out[2].as_slice::<f32>().unwrap().to_vec());
    }
    assert_eq!(outs[0], outs[1]);
    let want = reference::matmul_f32(&a, &w).unwrap();
    for (x, y) in outs[0].iter().zip(want.f32_slice().unwrap()) {
        assert!((x - y).abs() < 1e-4);
    }
}

#[test]
fn blocked_a_input_matches_plain() {
    let (m, n, k) = (16, 16, 16);
    let p = MatmulParams {
        mpn: 2,
        npn: 2,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 1,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let a = Tensor::random(&[m, k], DataType::F32, 19);
    let w = Tensor::random(&[k, n], DataType::F32, 20);
    let want = reference::matmul_f32(&a, &w).unwrap();

    let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
    spec.a_input = AInput::Blocked;
    let a_blocked = reorder::reorder(&a, Layout::blocked_a(2, p.mb, p.kb)).unwrap();
    let out = run(
        &spec,
        vec![
            a_blocked.into_storage(),
            blocked_weight(&w, p.kb, p.nb),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    assert!(max_diff(&out[2], &want) < 1e-4);
}

/// k-sliced template, f32: for several slice counts, the two-phase
/// lowering must agree with the unsliced template to float-reduction
/// tolerance (the only difference is the order of the k summation).
#[test]
fn k_sliced_matches_unsliced_f32() {
    let (m, n, k) = (16, 16, 336); // k_chunks = 42 = 2 * 3 * 7
    let a = Tensor::random(&[m, k], DataType::F32, 24);
    let w = Tensor::random(&[k, n], DataType::F32, 25);
    let want = reference::matmul_f32(&a, &w).unwrap();
    let mut base: Option<Vec<f32>> = None;
    for kpn in [1, 2, 3, 7] {
        let p = MatmulParams {
            mpn: 2,
            npn: 1,
            mb: 8,
            nb: 8,
            kb: 8,
            bs: 1,
            kpn,
            edge: EdgePolicy::Pad,
        };
        let spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
        let out = run(
            &spec,
            vec![
                a.storage().clone(),
                blocked_weight(&w, p.kb, p.nb),
                Storage::F32(vec![0.0; m * n]),
            ],
        );
        assert!(max_diff(&out[2], &want) < 1e-4, "kpn={kpn} vs reference");
        let flat = out[2].as_slice::<f32>().unwrap().to_vec();
        match &base {
            None => base = Some(flat),
            Some(b) => {
                for (i, (x, y)) in flat.iter().zip(b).enumerate() {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "kpn={kpn} elem {i}: {x} vs unsliced {y}"
                    );
                }
            }
        }
    }
}

/// k-sliced template with a fused epilogue chain: the phase-2 reduction
/// must feed the same post-ops the plain template anchors in its inner
/// loop.
#[test]
fn k_sliced_epilogue_chain() {
    let (m, n, k) = (8, 16, 64);
    let p = MatmulParams {
        mpn: 1,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 2,
        kpn: 4, // k_chunks = 4, one brgemm call per slice
        edge: EdgePolicy::Pad,
    };
    let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
    spec.post_ops = vec![
        PostOpSpec::BinaryScalarConst(BinaryOp::Mul, 2.0),
        PostOpSpec::BinaryRowVec {
            op: BinaryOp::Add,
            batch_indexed: false,
        },
        PostOpSpec::Unary(UnaryOp::Relu),
    ];
    let a = Tensor::random(&[m, k], DataType::F32, 26);
    let w = Tensor::random(&[k, n], DataType::F32, 27);
    let bias = Tensor::random(&[n], DataType::F32, 28);
    let mm = reference::matmul_f32(&a, &w).unwrap();
    let scaled = reference::binary(
        reference::BinaryKind::Mul,
        &mm,
        &Tensor::from_vec_f32(&[1], vec![2.0]).unwrap(),
    )
    .unwrap();
    let want = reference::relu(&reference::bias_add(&scaled, &bias).unwrap()).unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            bias.storage().clone(),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    assert!(max_diff(&out[3], &want) < 1e-4);
}

/// k-sliced template on a batched problem (the `batch * tasks * kpn`
/// index unflattening path).
#[test]
fn k_sliced_batched() {
    let (b, m, n, k) = (3, 8, 8, 128);
    let p = MatmulParams {
        mpn: 2,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 2,
        kpn: 2, // k_chunks = 8, 4 per slice
        edge: EdgePolicy::Pad,
    };
    let spec = default_spec(MatmulProblem::batched(b, m, n, k, 4), p);
    let a = Tensor::random(&[b, m, k], DataType::F32, 29);
    let w = Tensor::random(&[k, n], DataType::F32, 30);
    let want = {
        // shared rhs across the batch
        let mut outs = vec![0.0f32; b * m * n];
        for bi in 0..b {
            let a2 = Tensor::from_vec_f32(
                &[m, k],
                a.f32_slice().unwrap()[bi * m * k..(bi + 1) * m * k].to_vec(),
            )
            .unwrap();
            let r = reference::matmul_f32(&a2, &w).unwrap();
            outs[bi * m * n..(bi + 1) * m * n].copy_from_slice(r.f32_slice().unwrap());
        }
        outs
    };
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            Storage::F32(vec![0.0; b * m * n]),
        ],
    );
    let got = out[2].as_slice::<f32>().unwrap();
    for (i, (x, y)) in got.iter().zip(&want).enumerate() {
        assert!((x - y).abs() < 1e-4, "elem {i}: {x} vs {y}");
    }
}

/// k-sliced int8: integer accumulation is associative, so the sliced
/// path must match the unsliced template bit-for-bit.
#[test]
fn k_sliced_int8_bit_exact() {
    let (m, n, k) = (8, 8, 128);
    let a = Tensor::random(&[m, k], DataType::U8, 31);
    let w = Tensor::random(&[k, n], DataType::I8, 32);
    let comp = gc_tensor::quant::weight_compensation(w.i8_slice().unwrap(), k, n);
    let mut base: Option<Vec<u8>> = None;
    for kpn in [1, 2, 4] {
        let p = MatmulParams {
            mpn: 2,
            npn: 1,
            mb: 4,
            nb: 8,
            kb: 8,
            bs: 2,
            kpn,
            edge: EdgePolicy::Pad,
        };
        let mut spec = default_spec(MatmulProblem::new(m, n, k, 1), p);
        spec.int8 = Some(Int8Spec {
            a_zero: 5,
            scale: 0.1 * 0.2,
        });
        spec.post_ops = vec![PostOpSpec::Quantize {
            scale: 0.05,
            zero_point: 9,
        }];
        spec.out_dtype = DataType::U8;
        let out = run(
            &spec,
            vec![
                a.storage().clone(),
                blocked_weight(&w, p.kb, p.nb),
                Storage::I32(comp.clone()),
                Storage::U8(vec![0; m * n]),
            ],
        );
        let flat = out[3].as_slice::<u8>().unwrap().to_vec();
        match &base {
            None => base = Some(flat),
            Some(b) => assert_eq!(&flat, b, "kpn={kpn} differs from unsliced int8 output"),
        }
    }
}

#[test]
fn full_shape_binary_operand() {
    let (m, n, k) = (8, 8, 8);
    let p = MatmulParams {
        mpn: 1,
        npn: 1,
        mb: 4,
        nb: 8,
        kb: 8,
        bs: 1,
        kpn: 1,
        edge: EdgePolicy::Pad,
    };
    let mut spec = default_spec(MatmulProblem::new(m, n, k, 4), p);
    spec.post_ops = vec![PostOpSpec::BinaryFull { op: BinaryOp::Add }];
    let a = Tensor::random(&[m, k], DataType::F32, 21);
    let w = Tensor::random(&[k, n], DataType::F32, 22);
    let other = Tensor::random(&[m, n], DataType::F32, 23);
    let want = reference::binary(
        reference::BinaryKind::Add,
        &reference::matmul_f32(&a, &w).unwrap(),
        &other,
    )
    .unwrap();
    let out = run(
        &spec,
        vec![
            a.storage().clone(),
            blocked_weight(&w, p.kb, p.nb),
            other.storage().clone(),
            Storage::F32(vec![0.0; m * n]),
        ],
    );
    assert!(max_diff(&out[3], &want) < 1e-4);
}
