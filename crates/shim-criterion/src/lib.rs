//! Offline drop-in for the subset of the `criterion` 0.5 API this
//! workspace uses. The build container has no crates.io access, so the
//! real crate cannot be fetched; this shim keeps `cargo bench` working
//! with the same bench sources.
//!
//! Measurement model: per benchmark, a short warm-up, then `sample_size`
//! timed samples where each sample runs the closure enough times to
//! cover a minimum per-sample duration. Reports min / median / mean to
//! stdout. No statistics beyond that, no HTML reports, no baselines.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name with a parameter label.
    pub fn new<S: Into<String>, P: fmt::Display>(function_id: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// Identifier that is just a parameter label.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to the bench closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, running it many times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that makes one
        // sample take at least ~20ms, so Instant overhead is negligible.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                self.iters_per_sample = iters.max(1);
                break;
            }
            let target = Duration::from_millis(25).as_nanos() as u64;
            let got = elapsed.as_nanos().max(1) as u64;
            iters = (iters * target / got).clamp(iters + 1, iters * 100);
        }

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted and ignored (shim has a fixed calibration policy).
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        self.criterion.report(&full, &b);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        self.criterion.report(&full, &b);
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first
        // non-flag argument; flags like --bench are passed through by
        // cargo and ignored here.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Benchmark a closure with no input at the top level.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            let mut b = Bencher {
                iters_per_sample: 1,
                samples: Vec::new(),
                sample_count: 20,
            };
            f(&mut b);
            self.report(name, &b);
        }
        self
    }

    /// Run configuration hook (no-op; kept for `criterion_group!` parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    fn report(&self, name: &str, b: &Bencher) {
        let mut sorted = b.samples.clone();
        sorted.sort();
        if sorted.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<48} median {:>12}   mean {:>12}   min {:>12}   ({} samples x {} iters)",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            sorted.len(),
            b.iters_per_sample,
        );
    }
}

/// Define a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", "small"), &100u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".to_string()),
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
